// Algorithm 3: lossless VRNF decomposition (Theorem 16).
//
// Input: a schema (T, T_S, Σ) where Σ consists of certain keys and
// TOTAL FDs (X →w XY, Definition 9). Starting from {[[T]]}, while some
// component permits value redundancy, pick an external total FD
// X →w XY implied by Σ on that component whose LHS is not an implied
// c-key, and split the component into X(T_i − XY) (same projection kind)
// and [XY] (set projection). By Theorem 12, c⟨X⟩ holds on the [XY]
// component; by Theorem 11, every split is lossless.
//
// Deciding whether a component is in VRNF is co-NP-complete in general
// (Theorem 17); we enumerate candidate LHSs by ascending size, which
// also guarantees LHS-minimality of the violator picked — the paper's
// preservation note ("LHS-minimal FDs implied by total FDs and certain
// keys are total") then ensures the chosen FD is total, which the
// implementation asserts.
//
// The classical BCNF decomposition algorithm is the special case
// T_S = T with an implied key (see bcnf_decompose.h for the baseline).

#ifndef SQLNF_DECOMPOSITION_VRNF_DECOMPOSE_H_
#define SQLNF_DECOMPOSITION_VRNF_DECOMPOSE_H_

#include <vector>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/decomposition/decomposition.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// One split performed by Algorithm 3.
struct VrnfStep {
  AttributeSet component;        // the T_i that was split
  bool component_multiset = false;
  FunctionalDependency fd;       // the total FD X →w XY used
  AttributeSet set_component;    // XY
  AttributeSet rest_component;   // X(T_i − XY)

  std::string ToString(const TableSchema& schema) const;
};

struct VrnfOptions {
  /// Cap on component size for the exhaustive VRNF check (2^|T_i|
  /// closures). Components beyond the cap yield OutOfRange.
  int max_component_attributes = 26;
};

/// The result of Algorithm 3.
struct VrnfResult {
  Decomposition decomposition;
  std::vector<VrnfStep> steps;

  /// Per final component (parallel to decomposition.components): the
  /// certain keys guaranteed to hold on it — c⟨X⟩ for a split-off [XY]
  /// (Theorem 12) plus inherited keys whose attributes survived.
  /// Attribute ids are GLOBAL (original schema). Empty for remainder
  /// components without a gained key.
  std::vector<std::vector<KeyConstraint>> component_keys;
};

/// Runs Algorithm 3. Requires Σ to contain only certain keys and total
/// FDs (InvalidArgument otherwise; use NormalizeToTotal for the benign
/// rewrites the paper allows).
Result<VrnfResult> VrnfDecompose(const SchemaDesign& design,
                                 const VrnfOptions& options = {});

/// Rewrites Σ into the input class of Algorithm 3 where this is an
/// equivalence:
///  * c-FD X →w Y          ↦ X →w XY when X ⊆ X*c (already total: kept)
///  * p-FD X →s Y, X ⊆ T_S ↦ total c-FD X →w XY
///  * p-key p⟨X⟩, X ⊆ T_S  ↦ c-key c⟨X⟩
/// Fails (InvalidArgument) when a constraint has no equivalent total /
/// certain form.
Result<ConstraintSet> NormalizeToTotal(const TableSchema& schema,
                                       const ConstraintSet& sigma);

/// True when every component of `result` is in VRNF with respect to the
/// global Σ (used by tests; exponential).
Result<bool> AllComponentsVrnf(const SchemaDesign& design,
                               const VrnfResult& result,
                               const VrnfOptions& options = {});

}  // namespace sqlnf

#endif  // SQLNF_DECOMPOSITION_VRNF_DECOMPOSE_H_
