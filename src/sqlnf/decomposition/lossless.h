// Lossless decomposition (Definition 8, Theorem 11).
//
// Theorem 11: if Σ ⊨ X →w Y, then every instance I over (T, T_S, Σ)
// satisfies I = I[[X(T − XY)]] ⋈ I[XY] under the equality join. This is
// the c-FD generalization of the classical decomposition theorem; p-FDs
// only admit it on the X-total part (Lien), which is why certain FDs are
// the right notion for SQL schema design.

#ifndef SQLNF_DECOMPOSITION_LOSSLESS_H_
#define SQLNF_DECOMPOSITION_LOSSLESS_H_

#include "sqlnf/decomposition/decomposition.h"

namespace sqlnf {

/// The binary decomposition of Theorem 11 for the FD X → Y over
/// `schema`: {[[X(T−XY)]], [XY]}.
Decomposition DecomposeByFd(const TableSchema& schema,
                            const FunctionalDependency& fd);

/// Reconstructs the instance from the projections of `d` by folding the
/// equality join left-to-right.
Result<Table> JoinComponents(const Table& table, const Decomposition& d);

/// The decomposition is lossless FOR THIS INSTANCE: joining its
/// projections reproduces the instance as a multiset (row order and
/// column order ignored).
Result<bool> IsLosslessForInstance(const Table& table,
                                   const Decomposition& d);

/// The X-total part I_X of an instance: the rows with no ⊥ in X.
/// Lien's partial decomposition theorem (paper §3) states that a table
/// satisfying the p-FD X →s Y has I_X = I_X[[X(T−XY)]] ⋈ I_X[XY] —
/// losslessness only on the X-total part, which is why p-FDs are not
/// enough for SQL schema design.
Table XTotalPart(const Table& table, const AttributeSet& x);

}  // namespace sqlnf

#endif  // SQLNF_DECOMPOSITION_LOSSLESS_H_
