#include "sqlnf/decomposition/dependency_preservation.h"

#include "sqlnf/reasoning/implication.h"

namespace sqlnf {

Result<ConstraintSet> UnionOfProjections(const SchemaDesign& design,
                                         const Decomposition& d,
                                         const ProjectionOptions& options) {
  SQLNF_RETURN_NOT_OK(d.Validate(design.table));
  ConstraintSet merged;
  for (const Component& component : d.components) {
    SQLNF_ASSIGN_OR_RETURN(
        ConstraintSet cover,
        ProjectSigma(design.table, design.sigma, component.attrs,
                     options));
    for (const auto& fd : cover.fds()) merged.AddUniqueFd(fd);
    for (const auto& key : cover.keys()) merged.AddUniqueKey(key);
  }
  return merged;
}

Result<std::vector<Constraint>> LostConstraints(
    const SchemaDesign& design, const Decomposition& d,
    const ProjectionOptions& options) {
  SQLNF_ASSIGN_OR_RETURN(ConstraintSet merged,
                         UnionOfProjections(design, d, options));
  Implication imp(design.table, merged);
  std::vector<Constraint> lost;
  for (const Constraint& c : design.sigma.All()) {
    if (!imp.Implies(c)) lost.push_back(c);
  }
  return lost;
}

Result<bool> IsDependencyPreserving(const SchemaDesign& design,
                                    const Decomposition& d,
                                    const ProjectionOptions& options) {
  SQLNF_ASSIGN_OR_RETURN(auto lost, LostConstraints(design, d, options));
  return lost.empty();
}

}  // namespace sqlnf
