#include "sqlnf/decomposition/three_nf.h"

#include <map>

#include "sqlnf/reasoning/cover.h"

namespace sqlnf {

namespace {

AttributeSet ClassicalClosure(const ConstraintSet& sigma,
                              const AttributeSet& x) {
  AttributeSet c = x;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& fd : sigma.fds()) {
      if (fd.lhs.IsSubsetOf(c) && !fd.rhs.IsSubsetOf(c)) {
        c = c.Union(fd.rhs);
        changed = true;
      }
    }
  }
  return c;
}

Status RequireTotal(const SchemaDesign& design) {
  if (!(design.table.nfs() == design.table.all())) {
    return Status::Invalid(
        "3NF synthesis applies to total relations only (T_S = T); the "
        "paper defers an SQL Third normal form to future work");
  }
  return Status::OK();
}

}  // namespace

Result<AttributeSet> MinimalClassicalKey(const SchemaDesign& design) {
  SQLNF_RETURN_NOT_OK(RequireTotal(design));
  ConstraintSet fds = design.sigma.FdProjection(design.table.all());
  const AttributeSet all = design.table.all();
  AttributeSet key = all;
  for (AttributeId a : all) {
    AttributeSet candidate = key;
    candidate.Remove(a);
    if (all.IsSubsetOf(ClassicalClosure(fds, candidate))) {
      key = candidate;
    }
  }
  return key;
}

Result<Decomposition> ThreeNfSynthesis(const SchemaDesign& design) {
  SQLNF_RETURN_NOT_OK(RequireTotal(design));
  const TableSchema& schema = design.table;

  // Reduced cover over the FD view (keys become FDs X → T).
  SchemaDesign fd_view{schema,
                       design.sigma.FdProjection(schema.all())};
  ConstraintSet cover = ReducedCover(schema, fd_view.sigma);

  // Group by LHS.
  std::map<AttributeSet, AttributeSet> groups;
  for (const auto& fd : cover.fds()) {
    groups[fd.lhs] = groups[fd.lhs].Union(fd.lhs).Union(fd.rhs);
  }

  Decomposition out;
  int counter = 0;
  for (const auto& [lhs, attrs] : groups) {
    out.components.push_back({attrs, /*multiset=*/false,
                              schema.name() + "_3nf" +
                                  std::to_string(counter++)});
  }
  // Drop components contained in others.
  for (size_t i = 0; i < out.components.size();) {
    bool subsumed = false;
    for (size_t j = 0; j < out.components.size(); ++j) {
      if (i != j &&
          out.components[i].attrs.IsSubsetOf(out.components[j].attrs) &&
          !(j > i && out.components[j].attrs == out.components[i].attrs)) {
        subsumed = true;
        break;
      }
    }
    if (subsumed) {
      out.components.erase(out.components.begin() + i);
    } else {
      ++i;
    }
  }

  // Ensure some component contains a key (losslessness).
  SQLNF_ASSIGN_OR_RETURN(AttributeSet key, MinimalClassicalKey(design));
  bool key_covered = false;
  for (const Component& c : out.components) {
    if (key.IsSubsetOf(c.attrs)) {
      key_covered = true;
      break;
    }
  }
  if (!key_covered) {
    out.components.push_back({key, /*multiset=*/false,
                              schema.name() + "_3nfkey"});
  }
  if (out.components.empty()) {
    out.components.push_back({schema.all(), /*multiset=*/false,
                              schema.name() + "_3nf0"});
  }
  return out;
}

}  // namespace sqlnf
