#include "sqlnf/decomposition/bcnf_decompose.h"

#include <deque>
#include <optional>

#include "sqlnf/reasoning/closure.h"

namespace sqlnf {

namespace {

// Classical attribute closure: treat every FD as firing on plain subset
// containment (which is what both Algorithms 1 and 2 degenerate to when
// T_S = T).
AttributeSet ClassicalClosure(const ConstraintSet& sigma,
                              const AttributeSet& x) {
  AttributeSet c = x;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& fd : sigma.fds()) {
      if (fd.lhs.IsSubsetOf(c) && !fd.rhs.IsSubsetOf(c)) {
        c = c.Union(fd.rhs);
        changed = true;
      }
    }
  }
  return c;
}

}  // namespace

Result<Decomposition> ClassicalBcnfDecompose(const SchemaDesign& design) {
  const TableSchema& schema = design.table;
  if (!(schema.nfs() == schema.all())) {
    return Status::Invalid(
        "classical BCNF decomposition applies to total relations only "
        "(T_S = T); use VrnfDecompose for SQL schemata");
  }
  ConstraintSet sigma = design.sigma.FdProjection(schema.all());

  Decomposition out;
  std::deque<AttributeSet> queue;
  queue.push_back(schema.all());
  int counter = 0;
  while (!queue.empty()) {
    AttributeSet comp = queue.front();
    queue.pop_front();

    // Find a BCNF violator on comp: X ⊊ comp whose closure reaches
    // beyond X inside comp but not all of comp. Ascending-size scan for
    // determinism.
    std::optional<AttributeSet> violator;
    std::vector<AttributeId> ids = comp.ToVector();
    const int n = static_cast<int>(ids.size());
    for (int k = 1; k < n && !violator; ++k) {
      std::vector<int> pick(k);
      for (int i = 0; i < k; ++i) pick[i] = i;
      while (true) {
        AttributeSet x;
        for (int i : pick) x.Add(ids[i]);
        AttributeSet closure = ClassicalClosure(sigma, x).Intersect(comp);
        if (!closure.Difference(x).empty() && !comp.IsSubsetOf(closure)) {
          violator = x;
          break;
        }
        int i = k - 1;
        while (i >= 0 && pick[i] == n - k + i) --i;
        if (i < 0) break;
        ++pick[i];
        for (int j = i + 1; j < k; ++j) pick[j] = pick[j - 1] + 1;
      }
    }

    if (!violator) {
      out.components.push_back({comp, /*multiset=*/false,
                                schema.name() + "_b" +
                                    std::to_string(counter++)});
      continue;
    }
    AttributeSet closure =
        ClassicalClosure(sigma, *violator).Intersect(comp);
    AttributeSet xy = closure;                       // X ∪ (X+ ∩ comp)
    AttributeSet rest = comp.Difference(closure.Difference(*violator));
    queue.push_back(xy);
    queue.push_back(rest);
  }
  return out;
}

}  // namespace sqlnf
