// Dependency preservation for decompositions.
//
// The paper defers dependency-preserving normal forms to future work
// (Section 8) but notes that dependency-preserving BCNF decompositions
// can always be obtained by attribute splitting [Makowsky/Ravve]. This
// module provides the DIAGNOSTIC: a decomposition D of (T, T_S, Σ)
// preserves dependencies when Σ is implied by ⋃_i Σ[T_i] — i.e. the
// global constraints can be enforced by checking the components alone,
// without re-joining. Constraints that fail the test need cross-table
// enforcement after decomposition (triggers / assertions).
//
// Computing the Σ[T_i] covers is exponential in the component size
// (Theorems 8/17); the same guard as normalform/projection.h applies.

#ifndef SQLNF_DECOMPOSITION_DEPENDENCY_PRESERVATION_H_
#define SQLNF_DECOMPOSITION_DEPENDENCY_PRESERVATION_H_

#include <vector>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/decomposition/decomposition.h"
#include "sqlnf/normalform/projection.h"

namespace sqlnf {

/// The union of projection covers ⋃_i Σ[T_i], over the ORIGINAL
/// attribute ids.
Result<ConstraintSet> UnionOfProjections(
    const SchemaDesign& design, const Decomposition& d,
    const ProjectionOptions& options = {});

/// Constraints of Σ not implied by ⋃_i Σ[T_i] (empty = preserving).
Result<std::vector<Constraint>> LostConstraints(
    const SchemaDesign& design, const Decomposition& d,
    const ProjectionOptions& options = {});

/// True when the decomposition preserves all of Σ.
Result<bool> IsDependencyPreserving(
    const SchemaDesign& design, const Decomposition& d,
    const ProjectionOptions& options = {});

}  // namespace sqlnf

#endif  // SQLNF_DECOMPOSITION_DEPENDENCY_PRESERVATION_H_
