#include "sqlnf/decomposition/chase.h"

#include <vector>

namespace sqlnf {

Result<ChaseResult> ChaseLossless(const SchemaDesign& design,
                                  const Decomposition& d) {
  const TableSchema& schema = design.table;
  if (!(schema.nfs() == schema.all())) {
    return Status::Invalid(
        "the chase certifies losslessness for total relations (T_S = T) "
        "only; use IsLosslessForInstance / Theorem 11 for SQL schemata");
  }
  SQLNF_RETURN_NOT_OK(d.Validate(schema));

  const int n = schema.num_attributes();
  const int m = static_cast<int>(d.components.size());

  // Symbols: value a ∈ [0, n) is the distinguished symbol of column a;
  // values ≥ n are unique non-distinguished symbols.
  std::vector<std::vector<int>> tableau(m, std::vector<int>(n));
  int next_symbol = n;
  for (int i = 0; i < m; ++i) {
    for (AttributeId a = 0; a < n; ++a) {
      tableau[i][a] =
          d.components[i].attrs.Contains(a) ? a : next_symbol++;
    }
  }

  ConstraintSet fds = design.sigma.FdProjection(schema.all());

  // Chase to fixpoint: when two rows agree on an FD's LHS, unify their
  // RHS symbols (distinguished wins; otherwise the smaller id).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& fd : fds.fds()) {
      for (int i = 0; i < m; ++i) {
        for (int j = i + 1; j < m; ++j) {
          bool agree = true;
          for (AttributeId a : fd.lhs) {
            if (tableau[i][a] != tableau[j][a]) {
              agree = false;
              break;
            }
          }
          if (!agree) continue;
          for (AttributeId a : fd.rhs) {
            int& x = tableau[i][a];
            int& y = tableau[j][a];
            if (x == y) continue;
            // Unify: rename the larger symbol to the smaller across the
            // whole column (symbols are column-local by construction).
            int keep = std::min(x, y);
            int drop = std::max(x, y);
            for (int r = 0; r < m; ++r) {
              if (tableau[r][a] == drop) tableau[r][a] = keep;
            }
            changed = true;
          }
        }
      }
    }
  }

  ChaseResult result;
  for (int i = 0; i < m; ++i) {
    bool all_distinguished = true;
    for (AttributeId a = 0; a < n; ++a) {
      if (tableau[i][a] != a) {
        all_distinguished = false;
        break;
      }
    }
    if (all_distinguished) {
      result.lossless = true;
      return result;
    }
  }

  // Lossy: materialize the tableau as the counterexample instance.
  Table witness(schema);
  for (int i = 0; i < m; ++i) {
    std::vector<Value> row;
    row.reserve(n);
    for (AttributeId a = 0; a < n; ++a) {
      row.push_back(Value::Int(tableau[i][a]));
    }
    SQLNF_RETURN_NOT_OK(witness.AddRow(Tuple(std::move(row))));
  }
  result.counterexample = std::move(witness);
  return result;
}

}  // namespace sqlnf
