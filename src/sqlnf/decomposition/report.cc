#include "sqlnf/decomposition/report.h"

namespace sqlnf {

int DecompositionReport::TotalValuesEliminated() const {
  int total = 0;
  for (const ColumnStats& c : columns) total += c.values_eliminated();
  return total;
}

int DecompositionReport::TotalNullsEliminated() const {
  int total = 0;
  for (const ColumnStats& c : columns) total += c.nulls_eliminated();
  return total;
}

std::string DecompositionReport::ToString(const TableSchema& schema) const {
  std::string out;
  out += "cells: " + std::to_string(cells_before) + " -> " +
         std::to_string(cells_after) + "\n";
  out += "redundant value occurrences eliminated: " +
         std::to_string(TotalValuesEliminated()) + "\n";
  out += "null marker occurrences eliminated: " +
         std::to_string(TotalNullsEliminated()) + "\n";
  for (const ColumnStats& c : columns) {
    if (c.values_eliminated() == 0 && c.nulls_eliminated() == 0) continue;
    out += "  " + schema.attribute_name(c.column) + ": " +
           std::to_string(c.values_eliminated()) + " values";
    if (c.nulls_eliminated() > 0) {
      out += " + " + std::to_string(c.nulls_eliminated()) + " nulls";
    }
    out += "\n";
  }
  return out;
}

Result<DecompositionReport> ReportDecomposition(const Table& original,
                                                const Decomposition& d) {
  DecompositionReport report;
  SQLNF_ASSIGN_OR_RETURN(report.tables, ProjectAll(original, d));

  report.cells_before = original.num_cells();
  for (const Table& t : report.tables) {
    report.cells_after += t.num_cells();
  }

  for (AttributeId a = 0; a < original.num_columns(); ++a) {
    ColumnStats stats;
    stats.column = a;
    stats.occurrences_before = original.num_rows();
    stats.nulls_before = original.CountNulls(a);
    for (size_t i = 0; i < d.components.size(); ++i) {
      if (!d.components[i].attrs.Contains(a)) continue;
      ++stats.components;
      const Table& t = report.tables[i];
      SQLNF_ASSIGN_OR_RETURN(
          AttributeId local,
          t.schema().FindAttribute(original.schema().attribute_name(a)));
      stats.occurrences_after += t.num_rows();
      stats.nulls_after += t.CountNulls(local);
    }
    report.columns.push_back(stats);
  }
  return report;
}

Result<std::vector<StepElimination>> ReportVrnfSteps(
    const Table& original, const VrnfResult& result) {
  std::vector<StepElimination> out;
  for (const VrnfStep& step : result.steps) {
    StepElimination elim;
    elim.step = step;

    // Reconstruct the source instance of this step: the original rows
    // projected onto the component (multiset keeps all rows; a set
    // component of the original is its set projection — projections
    // compose, so projecting the original directly is exact).
    Table source(original.schema());
    if (step.component_multiset) {
      SQLNF_ASSIGN_OR_RETURN(
          source, ProjectMultiset(original, step.component, "src"));
    } else {
      SQLNF_ASSIGN_OR_RETURN(source,
                             ProjectSet(original, step.component, "src"));
    }
    SQLNF_ASSIGN_OR_RETURN(
        Table set_part,
        ProjectSet(source,
                   [&] {
                     // set_component ids are global; translate to the
                     // source's local ids by name.
                     AttributeSet local;
                     for (AttributeId a : step.set_component) {
                       auto id = source.schema().FindAttribute(
                           original.schema().attribute_name(a));
                       if (id.ok()) local.Add(id.value());
                     }
                     return local;
                   }(),
                   "set"));

    elim.source_rows = source.num_rows();
    elim.set_rows = set_part.num_rows();
    for (AttributeId a : step.set_component.Difference(step.fd.lhs)) {
      const std::string& name = original.schema().attribute_name(a);
      SQLNF_ASSIGN_OR_RETURN(AttributeId src_id,
                             source.schema().FindAttribute(name));
      SQLNF_ASSIGN_OR_RETURN(AttributeId set_id,
                             set_part.schema().FindAttribute(name));
      StepElimination::PerColumn col;
      col.column = a;
      const int nulls_before = source.CountNulls(src_id);
      const int nulls_after = set_part.CountNulls(set_id);
      col.nulls_eliminated = nulls_before - nulls_after;
      col.values_eliminated = (source.num_rows() - set_part.num_rows()) -
                              col.nulls_eliminated;
      elim.columns.push_back(col);
    }
    out.push_back(std::move(elim));
  }
  return out;
}

}  // namespace sqlnf
