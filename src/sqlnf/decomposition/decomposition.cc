#include "sqlnf/decomposition/decomposition.h"

#include <unordered_map>

namespace sqlnf {

std::string Component::ToString(const TableSchema& schema) const {
  std::string body = schema.FormatSet(attrs);
  return multiset ? "[[" + body + "]]" : "[" + body + "]";
}

AttributeSet Decomposition::UnionOfComponents() const {
  AttributeSet u;
  for (const Component& c : components) u = u.Union(c.attrs);
  return u;
}

Status Decomposition::Validate(const TableSchema& schema) const {
  if (components.empty()) {
    return Status::Invalid("decomposition has no components");
  }
  for (const Component& c : components) {
    if (c.attrs.empty()) {
      return Status::Invalid("decomposition component is empty");
    }
    if (!c.attrs.IsSubsetOf(schema.all())) {
      return Status::Invalid("component attributes outside schema");
    }
  }
  if (!(UnionOfComponents() == schema.all())) {
    return Status::Invalid("components do not cover the schema");
  }
  return Status::OK();
}

std::string Decomposition::ToString(const TableSchema& schema) const {
  std::string out = "{";
  for (size_t i = 0; i < components.size(); ++i) {
    if (i > 0) out += ", ";
    out += components[i].ToString(schema);
  }
  out += "}";
  return out;
}

Result<Table> ProjectMultiset(const Table& table, const AttributeSet& x,
                              const std::string& name) {
  SQLNF_ASSIGN_OR_RETURN(TableSchema schema,
                         table.schema().Project(x, name));
  Table out(std::move(schema));
  for (const Tuple& t : table.rows()) {
    SQLNF_RETURN_NOT_OK(out.AddRow(t.Restrict(x)));
  }
  return out;
}

Result<Table> ProjectSet(const Table& table, const AttributeSet& x,
                         const std::string& name) {
  SQLNF_ASSIGN_OR_RETURN(TableSchema schema,
                         table.schema().Project(x, name));
  Table out(std::move(schema));
  std::unordered_map<size_t, std::vector<int>> seen;  // hash -> row ids
  for (const Tuple& t : table.rows()) {
    Tuple restricted = t.Restrict(x);
    size_t h = restricted.Hash();
    bool duplicate = false;
    for (int row : seen[h]) {
      if (out.row(row) == restricted) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      seen[h].push_back(out.num_rows());
      SQLNF_RETURN_NOT_OK(out.AddRow(std::move(restricted)));
    }
  }
  return out;
}

Result<std::vector<Table>> ProjectAll(const Table& table,
                                      const Decomposition& d) {
  SQLNF_RETURN_NOT_OK(d.Validate(table.schema()));
  std::vector<Table> out;
  out.reserve(d.components.size());
  for (size_t i = 0; i < d.components.size(); ++i) {
    const Component& c = d.components[i];
    std::string name =
        c.name.empty() ? table.schema().name() + "_" + std::to_string(i)
                       : c.name;
    if (c.multiset) {
      SQLNF_ASSIGN_OR_RETURN(Table t, ProjectMultiset(table, c.attrs, name));
      out.push_back(std::move(t));
    } else {
      SQLNF_ASSIGN_OR_RETURN(Table t, ProjectSet(table, c.attrs, name));
      out.push_back(std::move(t));
    }
  }
  return out;
}

Result<Table> EqualityJoin(const Table& left, const Table& right,
                           const std::string& name) {
  const TableSchema& ls = left.schema();
  const TableSchema& rs = right.schema();

  // Column plan: all left columns, then right-only columns. Common
  // columns pair up by name.
  std::vector<std::pair<AttributeId, AttributeId>> common;  // (l, r)
  std::vector<AttributeId> right_only;
  std::vector<std::string> out_names;
  std::vector<std::string> out_not_null;
  for (AttributeId l = 0; l < ls.num_attributes(); ++l) {
    out_names.push_back(ls.attribute_name(l));
    if (ls.nfs().Contains(l)) out_not_null.push_back(ls.attribute_name(l));
  }
  for (AttributeId r = 0; r < rs.num_attributes(); ++r) {
    auto l = ls.FindAttribute(rs.attribute_name(r));
    if (l.ok()) {
      common.emplace_back(l.value(), r);
    } else {
      right_only.push_back(r);
      out_names.push_back(rs.attribute_name(r));
      if (rs.nfs().Contains(r)) {
        out_not_null.push_back(rs.attribute_name(r));
      }
    }
  }

  SQLNF_ASSIGN_OR_RETURN(TableSchema out_schema,
                         TableSchema::Make(name, out_names, out_not_null));
  Table out(std::move(out_schema));

  // Hash the right side on the common columns (equality join: identical
  // values, ⊥ matching only ⊥).
  auto key_hash = [&](const Tuple& t, bool is_left) {
    size_t h = 0;
    for (const auto& [l, r] : common) {
      h = h * 1315423911u + t[is_left ? l : r].Hash();
    }
    return h;
  };
  std::unordered_map<size_t, std::vector<int>> index;
  for (int i = 0; i < right.num_rows(); ++i) {
    index[key_hash(right.row(i), false)].push_back(i);
  }

  // Hash each left row once, and reserve the output from the bucket
  // sizes (an upper bound on emitted rows) before the probe pass.
  std::vector<size_t> left_hash(left.num_rows());
  int64_t reserve = 0;
  for (int i = 0; i < left.num_rows(); ++i) {
    left_hash[i] = key_hash(left.row(i), true);
    auto it = index.find(left_hash[i]);
    if (it != index.end()) reserve += static_cast<int64_t>(it->second.size());
  }
  out.ReserveRows(static_cast<int>(reserve));

  for (int i = 0; i < left.num_rows(); ++i) {
    const Tuple& lt = left.row(i);
    auto it = index.find(left_hash[i]);
    if (it == index.end()) continue;
    for (int j : it->second) {
      const Tuple& rt = right.row(j);
      bool match = true;
      for (const auto& [l, r] : common) {
        if (!(lt[l] == rt[r])) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      std::vector<Value> row;
      row.reserve(out.num_columns());
      for (const Value& v : lt.values()) row.push_back(v);
      for (AttributeId r : right_only) row.push_back(rt[r]);
      SQLNF_RETURN_NOT_OK(out.AddRow(Tuple(std::move(row))));
    }
  }
  return out;
}

}  // namespace sqlnf
