// Classical Third-normal-form synthesis (Biskup/Dayal/Bernstein,
// SIGMOD'79 — the paper's reference [7]).
//
// The paper defers an SQL Third normal form to future work (Section 8)
// but leans on the classical synthesis as the known
// dependency-preserving alternative to BCNF decomposition. We provide
// it for the idealized relational case (T_S = T) as a baseline: unlike
// ClassicalBcnfDecompose, the result is always dependency preserving,
// at the price of possibly retaining (bounded) redundancy.
//
// Synthesis: take a reduced cover of Σ, group FDs by LHS into
// components LHS ∪ RHS*, drop components subsumed by others, and add a
// minimal-key component if none contains a key.

#ifndef SQLNF_DECOMPOSITION_THREE_NF_H_
#define SQLNF_DECOMPOSITION_THREE_NF_H_

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/decomposition/decomposition.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// 3NF synthesis for total relations (requires T_S = T; FD modes are
/// ignored, keys become FDs X → T). All components are set projections.
Result<Decomposition> ThreeNfSynthesis(const SchemaDesign& design);

/// A minimal key of the relational schema under classical closure
/// (shrinks T greedily). Requires T_S = T.
Result<AttributeSet> MinimalClassicalKey(const SchemaDesign& design);

}  // namespace sqlnf

#endif  // SQLNF_DECOMPOSITION_THREE_NF_H_
