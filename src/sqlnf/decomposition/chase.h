// The chase: SCHEMA-level losslessness for the idealized relational
// case.
//
// Definition 8 calls a schema decomposition lossless when it induces a
// lossless decomposition for ALL instances — something instance
// sampling (lossless.h) can only refute, never certify. For total
// relations (T_S = T) the classical chase decides it: build the tableau
// with one row per component (distinguished symbols on the component's
// attributes, unique symbols elsewhere), chase with the FDs of Σ|FD,
// and test whether some row becomes fully distinguished.
//
// When the answer is "lossy", the final tableau doubles as a concrete
// counterexample instance: it satisfies Σ, yet the join of its
// projections contains the all-distinguished row the instance lacks.

#ifndef SQLNF_DECOMPOSITION_CHASE_H_
#define SQLNF_DECOMPOSITION_CHASE_H_

#include <optional>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/decomposition/decomposition.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

struct ChaseResult {
  bool lossless = false;
  /// When lossy: the chased tableau as an instance over (T, T_S, Σ)
  /// whose decomposition does not reconstruct it.
  std::optional<Table> counterexample;
};

/// Runs the chase. Requires T_S = T (the SQL generalization with ⊥ and
/// multisets is handled semantically by Theorem 11 / Algorithm 3, not
/// by this classical tool). FD modes are ignored; keys fold in as
/// FDs X → T.
Result<ChaseResult> ChaseLossless(const SchemaDesign& design,
                                  const Decomposition& d);

}  // namespace sqlnf

#endif  // SQLNF_DECOMPOSITION_CHASE_H_
