// Decompositions with set and multiset components (Definitions 6–8).
//
// SQL instances are multisets, so a decomposition D of T mixes
// set-projections [X] (duplicates removed) and multiset-projections
// [[X]] (duplicates kept); their union must cover T. Joins are EQUALITY
// joins: common attributes must hold identical values (⊥ matches only
// ⊥), not merely weakly similar ones — this is what makes Theorem 11's
// losslessness work in the presence of nulls.

#ifndef SQLNF_DECOMPOSITION_DECOMPOSITION_H_
#define SQLNF_DECOMPOSITION_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/core/table.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// One component of a schema decomposition.
struct Component {
  AttributeSet attrs;
  bool multiset = false;  // [[X]] when true, [X] when false
  std::string name;       // optional label for projected tables

  std::string ToString(const TableSchema& schema) const;
};

/// A decomposition D = {[T_1], ..., [[T_j]], ...} of a schema.
struct Decomposition {
  std::vector<Component> components;

  /// ∪D — must equal schema.all() for a valid decomposition.
  AttributeSet UnionOfComponents() const;

  /// Checks ∪D = T and every component non-empty.
  Status Validate(const TableSchema& schema) const;

  std::string ToString(const TableSchema& schema) const;
};

/// Set projection I[X]: distinct restricted tuples, in order of first
/// occurrence. The projected table's schema is schema.Project(x).
Result<Table> ProjectSet(const Table& table, const AttributeSet& x,
                         const std::string& name);

/// Multiset projection I[[X]]: one restricted tuple per input row.
Result<Table> ProjectMultiset(const Table& table, const AttributeSet& x,
                              const std::string& name);

/// Projects `table` onto every component of `d`.
Result<std::vector<Table>> ProjectAll(const Table& table,
                                      const Decomposition& d);

/// Natural equality join of two projected tables (common columns by
/// name; values must be identical, ⊥ = ⊥ included). The result contains
/// the union of both column sets, ordered as in `schema_order` (the
/// original schema), and is a multiset (duplicates preserved as produced
/// by the join).
Result<Table> EqualityJoin(const Table& left, const Table& right,
                           const std::string& name);

}  // namespace sqlnf

#endif  // SQLNF_DECOMPOSITION_DECOMPOSITION_H_
