// Classical BCNF decomposition — the relational baseline.
//
// Algorithm 3 reduces to the textbook BCNF decomposition in the
// idealized special case where all attributes are NOT NULL and some key
// holds (paper §6.3). This module implements that textbook algorithm
// directly over classical FDs (p/c coincide on total relations) so the
// benchmarks can compare the general SQL path against the relational
// baseline, and tests can confirm the reduction.

#ifndef SQLNF_DECOMPOSITION_BCNF_DECOMPOSE_H_
#define SQLNF_DECOMPOSITION_BCNF_DECOMPOSE_H_

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/decomposition/decomposition.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// Textbook lossless BCNF decomposition. Requires T_S = T (all NOT
/// NULL); FD modes are ignored (they coincide on total relations) and
/// keys are treated as FDs X → T. All resulting components are set
/// projections.
Result<Decomposition> ClassicalBcnfDecompose(const SchemaDesign& design);

}  // namespace sqlnf

#endif  // SQLNF_DECOMPOSITION_BCNF_DECOMPOSE_H_
