#include "sqlnf/decomposition/lossless.h"

namespace sqlnf {

Decomposition DecomposeByFd(const TableSchema& schema,
                            const FunctionalDependency& fd) {
  const AttributeSet xy = fd.lhs.Union(fd.rhs);
  Decomposition d;
  d.components.push_back(
      {fd.lhs.Union(schema.all().Difference(xy)), /*multiset=*/true,
       schema.name() + "_rest"});
  d.components.push_back({xy, /*multiset=*/false, schema.name() + "_xy"});
  return d;
}

Table XTotalPart(const Table& table, const AttributeSet& x) {
  Table out(table.schema());
  for (const Tuple& t : table.rows()) {
    if (t.IsTotal(x)) {
      Status st = out.AddRow(t);
      (void)st;
    }
  }
  return out;
}

Result<Table> JoinComponents(const Table& table, const Decomposition& d) {
  SQLNF_ASSIGN_OR_RETURN(std::vector<Table> parts, ProjectAll(table, d));
  Table joined = std::move(parts[0]);
  for (size_t i = 1; i < parts.size(); ++i) {
    SQLNF_ASSIGN_OR_RETURN(
        joined, EqualityJoin(joined, parts[i],
                             table.schema().name() + "_joined"));
  }
  return joined;
}

Result<bool> IsLosslessForInstance(const Table& table,
                                   const Decomposition& d) {
  SQLNF_ASSIGN_OR_RETURN(Table joined, JoinComponents(table, d));
  if (joined.num_rows() != table.num_rows()) return false;
  // Compare as multisets after aligning column order with the original.
  // The join emits columns in component order; rebuild in schema order.
  std::vector<AttributeId> mapping;  // original id -> joined id
  for (AttributeId a = 0; a < table.num_columns(); ++a) {
    SQLNF_ASSIGN_OR_RETURN(
        AttributeId j,
        joined.schema().FindAttribute(table.schema().attribute_name(a)));
    mapping.push_back(j);
  }
  Table aligned(table.schema());
  for (const Tuple& t : joined.rows()) {
    std::vector<Value> row;
    row.reserve(mapping.size());
    for (AttributeId j : mapping) row.push_back(t[j]);
    SQLNF_RETURN_NOT_OK(aligned.AddRow(Tuple(std::move(row))));
  }
  return table.SameMultiset(aligned);
}

}  // namespace sqlnf
