// Deterministic pseudo-random number generator.
//
// All data generators in the library take an explicit seed so that tests
// and benchmarks are reproducible across runs and platforms. We wrap
// std::mt19937_64 behind a small interface to keep call sites terse.

#ifndef SQLNF_UTIL_RNG_H_
#define SQLNF_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace sqlnf {

/// Deterministic RNG; identical seeds yield identical streams.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability `p` of true.
  bool Chance(double p);

  /// Picks a uniformly random element index for a container of `size`
  /// elements. Requires size > 0.
  size_t Index(size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Index(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sqlnf

#endif  // SQLNF_UTIL_RNG_H_
