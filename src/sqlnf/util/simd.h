// ISA plumbing for the explicit SIMD kernel layer — the ONLY header
// that may define SQLNF_SIMD_* feature macros, and (with
// core/simd_kernels.cc) the only file that may include intrinsics
// headers. The sqlnf_lint `simd-confinement` rule enforces both, so
// every other translation unit stays ISA-agnostic and portable: callers
// see only the dispatch API of core/simd_kernels.h.
//
// Three compile-time tiers, probed here and selected at RUNTIME by
// core/simd_kernels.cc (simd::ActiveLevel):
//
//   SQLNF_SIMD_X86        x86-64 baseline — SSE2 is guaranteed by the
//                         ABI, so the 128-bit kernels compile
//                         unconditionally with no target attribute.
//   SQLNF_SIMD_NEON       AArch64/ARM NEON — the portable 128-bit path
//                         on ARM (compares and byte narrowing;
//                         gather-shaped kernels stay scalar).
//   SQLNF_SIMD_HAVE_AVX2  AVX2 kernels are COMPILED (per-function
//                         __attribute__((target("avx2"))), so the rest
//                         of the TU keeps the baseline ISA). Whether
//                         they EXECUTE is decided per process by
//                         __builtin_cpu_supports("avx2") plus the
//                         SQLNF_SIMD_LEVEL override — never by the
//                         compile flags alone, so one binary runs
//                         correctly on any x86-64.
//
// Defining SQLNF_SIMD_FORCE_SCALAR (the CI fallback leg) compiles out
// every vector path: DetectedLevel() is kScalar and the scalar
// reference kernels — the differential oracle — are all that remains.
// The kernels are bit-identical across levels by contract, so forcing
// scalar can never change a result, only its speed.

#ifndef SQLNF_UTIL_SIMD_H_
#define SQLNF_UTIL_SIMD_H_

#if !defined(SQLNF_SIMD_FORCE_SCALAR) && \
    (defined(__x86_64__) || defined(_M_X64))
#define SQLNF_SIMD_X86 1
#else
#define SQLNF_SIMD_X86 0
#endif

#if !defined(SQLNF_SIMD_FORCE_SCALAR) && defined(__ARM_NEON)
#define SQLNF_SIMD_NEON 1
#else
#define SQLNF_SIMD_NEON 0
#endif

// AVX2 via per-function target attributes needs GCC/Clang; MSVC would
// need /arch juggling and has no __builtin_cpu_supports.
#if SQLNF_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
#define SQLNF_SIMD_HAVE_AVX2 1
#define SQLNF_SIMD_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define SQLNF_SIMD_HAVE_AVX2 0
#define SQLNF_SIMD_TARGET_AVX2
#endif

// Applied to the scalar reference kernels so the compiler does not
// auto-vectorize the oracle: the scalar level must stay genuinely
// scalar — it is the differential baseline the E19 speedup gate and
// the forced-scalar CI leg both measure against. (Clang has no
// per-function optimize attribute; its loops carry
// `#pragma clang loop vectorize(disable)` instead, see
// SQLNF_SIMD_NO_AUTOVEC.)
#if defined(__clang__)
#define SQLNF_SIMD_SCALAR_FN
#define SQLNF_SIMD_NO_AUTOVEC \
  _Pragma("clang loop vectorize(disable) interleave(disable)")
#elif defined(__GNUC__)
#define SQLNF_SIMD_SCALAR_FN \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#define SQLNF_SIMD_NO_AUTOVEC
#else
#define SQLNF_SIMD_SCALAR_FN
#define SQLNF_SIMD_NO_AUTOVEC
#endif

#endif  // SQLNF_UTIL_SIMD_H_
