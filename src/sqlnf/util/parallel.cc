#include "sqlnf/util/parallel.h"

namespace sqlnf {

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(1, threads) - 1;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* job;
    int total;
    {
      MutexLock lock(mu_);
      while (!stop_ && generation_ == seen_generation) work_cv_.Wait(mu_);
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
      // A batch that already retired (job_ reset) leaves nothing to
      // claim; waking for it must not touch the task counters.
      if (job == nullptr) continue;
      // The batch size is fixed for the batch's lifetime, so a copy
      // taken under the lock stays valid for the whole claiming loop —
      // RunTasks only rewrites total_ for the NEXT batch, which cannot
      // start until this worker deregisters below.
      total = total_;
      // Registering under the lock is what lets RunTasks know a worker
      // is inside the claiming loop: the batch cannot retire — and the
      // counters cannot be reused for the next batch — until every
      // registered worker has deregistered below.
      ++active_;
    }
    for (;;) {
      const int i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      (*job)(i);
      completed_.fetch_add(1, std::memory_order_acq_rel);
    }
    {
      MutexLock lock(mu_);
      --active_;
    }
    done_cv_.NotifyAll();
  }
}

void ThreadPool::RunTasks(int num_tasks,
                          const std::function<void(int)>& task) {
  if (num_tasks <= 0) return;
  if (workers_.empty() || num_tasks == 1) {
    for (int i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  {
    MutexLock lock(mu_);
    job_ = &task;
    total_ = num_tasks;
    next_.store(0, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.NotifyAll();
  // The calling thread claims tasks alongside the workers.
  for (;;) {
    const int i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= num_tasks) break;
    task(i);
    completed_.fetch_add(1, std::memory_order_acq_rel);
  }
  // Retire the batch only once every task ran AND every registered
  // worker has left its claiming loop. Without the second condition a
  // worker still probing next_ after the final task could observe the
  // counters reset by the NEXT batch and re-claim index 0 against this
  // batch's (by then dangling) job pointer.
  MutexLock lock(mu_);
  while (completed_.load(std::memory_order_acquire) != num_tasks ||
         active_ != 0) {
    done_cv_.Wait(mu_);
  }
  job_ = nullptr;
}

int64_t ParallelEmit(ThreadPool* pool, int64_t begin, int64_t end,
                     const std::function<int64_t(int64_t, int64_t)>& count,
                     const std::function<void(int64_t)>& reserve,
                     const std::function<void(int64_t, int64_t, int64_t)>&
                         fill) {
  const int64_t n = end - begin;
  if (n <= 0) {
    reserve(0);
    return 0;
  }
  const int chunks = pool == nullptr ? 1 : ParallelChunks(*pool, n);
  const int64_t per_chunk = (n + chunks - 1) / chunks;
  auto run = [&](const std::function<void(int)>& task) {
    if (pool == nullptr) {
      task(0);
    } else {
      pool->RunTasks(chunks, task);
    }
  };
  // offsets[c + 1] holds chunk c's count, then (after the prefix sum)
  // the exclusive offset of chunk c + 1.
  std::vector<int64_t> offsets(chunks + 1, 0);
  run([&](int c) {
    const int64_t b = begin + c * per_chunk;
    const int64_t e = std::min(end, b + per_chunk);
    if (b < e) offsets[c + 1] = count(b, e);
  });
  for (int c = 0; c < chunks; ++c) offsets[c + 1] += offsets[c];
  reserve(offsets[chunks]);
  run([&](int c) {
    const int64_t b = begin + c * per_chunk;
    const int64_t e = std::min(end, b + per_chunk);
    if (b < e) fill(b, e, offsets[c]);
  });
  return offsets[chunks];
}

int ParallelChunks(const ThreadPool& pool, int64_t n) {
  const int target = pool.num_threads() * 4;
  return static_cast<int>(
      std::min<int64_t>(n, std::max(1, target)));
}

void ParallelFor(ThreadPool& pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  const int chunks = ParallelChunks(pool, n);
  const int64_t per_chunk = (n + chunks - 1) / chunks;
  pool.RunTasks(chunks, [&](int c) {
    const int64_t b = begin + c * per_chunk;
    const int64_t e = std::min(end, b + per_chunk);
    if (b < e) body(b, e);
  });
}

}  // namespace sqlnf
