// Clang Thread Safety Analysis macro shims.
//
// The engine's concurrency contract — one writer thread, any number of
// snapshot readers, snapshot publication only under the catalog mutex —
// is machine-checked by Clang's -Wthread-safety capability analysis.
// These macros expand to the underlying attributes under Clang and to
// nothing elsewhere, so GCC builds are unaffected and the annotations
// cost nothing at runtime.
//
// CI compiles the whole tree with clang and -Werror=thread-safety (the
// `thread-safety` job), and tests/thread_safety_violation.cc is a
// negative-compile probe asserting the gate actually rejects a write
// from a reader context. See DESIGN.md §8 for the capability model and
// how to annotate new code.

#ifndef SQLNF_UTIL_THREAD_ANNOTATIONS_H_
#define SQLNF_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define SQLNF_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SQLNF_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Marks a class as a capability (a mutex, or a phantom role such as
/// the engine's WriterThread). The string names it in diagnostics.
#define SQLNF_CAPABILITY(x) SQLNF_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (MutexLock, WriterScope).
#define SQLNF_SCOPED_CAPABILITY SQLNF_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a data member is protected by the given capability:
/// reads require it shared, writes require it exclusively.
#define SQLNF_GUARDED_BY(x) SQLNF_THREAD_ANNOTATION_(guarded_by(x))

/// As GUARDED_BY, but for the data a pointer member points to.
#define SQLNF_PT_GUARDED_BY(x) SQLNF_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function may only be called while holding the listed
/// capabilities exclusively; it neither acquires nor releases them.
#define SQLNF_REQUIRES(...) \
  SQLNF_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Shared (reader) form of SQLNF_REQUIRES.
#define SQLNF_REQUIRES_SHARED(...) \
  SQLNF_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define SQLNF_ACQUIRE(...) \
  SQLNF_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases the capability (which must be held on entry).
#define SQLNF_RELEASE(...) \
  SQLNF_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define SQLNF_TRY_ACQUIRE(result, ...) \
  SQLNF_THREAD_ANNOTATION_(try_acquire_capability(result, __VA_ARGS__))

/// The function must NOT be called while holding the listed
/// capabilities (non-reentrancy / deadlock guard).
#define SQLNF_EXCLUDES(...) \
  SQLNF_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts at analysis level that the capability is held (for code
/// reached only via paths the analysis cannot follow).
#define SQLNF_ASSERT_CAPABILITY(x) \
  SQLNF_THREAD_ANNOTATION_(assert_capability(x))

/// The function returns a reference to the named capability.
#define SQLNF_RETURN_CAPABILITY(x) SQLNF_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables analysis for one function. Use only where the
/// analysis is structurally unable to follow the locking (and say why).
#define SQLNF_NO_THREAD_SAFETY_ANALYSIS \
  SQLNF_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // SQLNF_UTIL_THREAD_ANNOTATIONS_H_
