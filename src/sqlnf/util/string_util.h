// Small string helpers shared across the library.

#ifndef SQLNF_UTIL_STRING_UTIL_H_
#define SQLNF_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sqlnf {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Splits `s` on `sep`; keeps empty pieces.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Splits `s` on `sep`, strips each piece, and drops empty pieces.
std::vector<std::string> SplitAndStrip(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace sqlnf

#endif  // SQLNF_UTIL_STRING_UTIL_H_
