// Dependency-free parallel-execution utility: a fixed pool of worker
// threads plus chunked ParallelFor / ParallelReduce helpers.
//
// The hot paths of this engine — the O(n²) row-pair sweep behind
// Section-7 discovery, the grouped validators' bucket scans, and
// corpus-level mining — are embarrassingly parallel. Everything here is
// deterministic by construction: work is split into chunks whose
// boundaries depend only on the input size, and reductions fold the
// per-chunk results left-to-right in chunk order. With `threads <= 1`
// every helper runs inline on the calling thread (no pool, no locks),
// which keeps tests and single-threaded callers bit-for-bit identical
// to the pre-parallel code.
//
// Thread counts are always an EXPLICIT caller option (ParallelOptions /
// DiscoveryOptions::threads); nothing here inspects the machine.

#ifndef SQLNF_UTIL_PARALLEL_H_
#define SQLNF_UTIL_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sqlnf/util/mutex.h"
#include "sqlnf/util/thread_annotations.h"

namespace sqlnf {

/// Caller-facing knob for the parallel entry points. `threads <= 1`
/// means serial execution on the calling thread.
struct ParallelOptions {
  int threads = 1;
};

/// A fixed pool of `threads - 1` workers; the calling thread always
/// participates, so `ThreadPool(4)` uses four threads total. One batch
/// of tasks runs at a time (RunTasks is not reentrant); tasks are
/// claimed dynamically from an atomic counter, so uneven task costs
/// load-balance themselves.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads doing work (workers + the caller).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs task(0) .. task(num_tasks - 1), each exactly once, across the
  /// workers and the calling thread. Blocks until all complete. Tasks
  /// must not call RunTasks on the same pool.
  void RunTasks(int num_tasks, const std::function<void(int)>& task);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  // Batch in flight; workers snapshot job_/total_ into locals under mu_
  // and claim tasks lock-free from the atomics afterwards.
  const std::function<void(int)>* job_ SQLNF_GUARDED_BY(mu_) = nullptr;
  int total_ SQLNF_GUARDED_BY(mu_) = 0;
  std::atomic<int> next_{0};
  std::atomic<int> completed_{0};
  // Workers currently claiming from the batch.
  int active_ SQLNF_GUARDED_BY(mu_) = 0;
  uint64_t generation_ SQLNF_GUARDED_BY(mu_) = 0;
  bool stop_ SQLNF_GUARDED_BY(mu_) = false;
};

/// Number of chunks used to split `n` items for a pool: enough slack
/// for dynamic load balancing without drowning in scheduling overhead.
int ParallelChunks(const ThreadPool& pool, int64_t n);

/// Splits [begin, end) into chunks and runs `body(chunk_begin,
/// chunk_end)` for each, in parallel. Chunk boundaries depend only on
/// the range and the pool size.
void ParallelFor(ThreadPool& pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& body);

/// Two-phase count/fill emission — the deterministic parallel
/// compaction behind the morsel-driven operators (hash-join probe,
/// encoded selection, distinct-row emission). Each output item is
/// produced by exactly one input chunk, and a chunk's output lands in
/// one contiguous window whose offset is fixed by an exclusive prefix
/// sum over the chunk counts — so the concatenated output order depends
/// only on the input order, never on thread scheduling, and no per-chunk
/// intermediate vectors are ever materialized.
///
///   1. `count(chunk_begin, chunk_end)` returns how many items the
///      chunk will emit (it must be a pure function of the range);
///   2. the exclusive prefix sum of the chunk counts fixes each chunk's
///      output offset, and `reserve(total)` sizes the output once;
///   3. `fill(chunk_begin, chunk_end, offset)` re-runs the chunk and
///      writes its items at `offset`, `offset + 1`, ... — exactly
///      `count` of them.
///
/// `pool == nullptr` runs the same two passes inline as one chunk.
/// Returns the total number of items emitted.
///
/// The hot callers vectorize both phases through core/simd_kernels.h:
/// counting is simd::CountBytes over match bytes and filling is
/// simd::CompressStore into the chunk's window. Because each window is
/// EXACTLY count items, fill kernels must never overstore past their
/// window (CompressStore spills its vector locally and copies only the
/// selected ids) — a full-vector store would race with the adjacent
/// chunk's window.
int64_t ParallelEmit(ThreadPool* pool, int64_t begin, int64_t end,
                     const std::function<int64_t(int64_t, int64_t)>& count,
                     const std::function<void(int64_t)>& reserve,
                     const std::function<void(int64_t, int64_t, int64_t)>&
                         fill);

/// Maps [begin, end) in chunks and folds the per-chunk results
/// LEFT-TO-RIGHT in chunk order — deterministic for non-commutative
/// combines (e.g. ordered dedup merges). `map(chunk_begin, chunk_end)`
/// produces one T per chunk; `combine(accumulator, chunk_result)` folds
/// it in on the calling thread. T must be default-constructible, and
/// combining a default-constructed T must be a no-op (chunking may
/// produce empty tail chunks).
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(ThreadPool& pool, int64_t begin, int64_t end, T init,
                 MapFn&& map, CombineFn&& combine) {
  const int64_t n = end - begin;
  if (n <= 0) return init;
  const int chunks = ParallelChunks(pool, n);
  std::vector<T> partial(chunks);
  const int64_t per_chunk = (n + chunks - 1) / chunks;
  pool.RunTasks(chunks, [&](int c) {
    const int64_t b = begin + c * per_chunk;
    const int64_t e = std::min(end, b + per_chunk);
    if (b < e) partial[c] = map(b, e);
  });
  T acc = std::move(init);
  for (T& p : partial) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace sqlnf

#endif  // SQLNF_UTIL_PARALLEL_H_
