#include "sqlnf/util/string_util.h"

#include <cctype>

namespace sqlnf {

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitAndStrip(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const std::string& piece : SplitString(s, sep)) {
    std::string_view stripped = StripAsciiWhitespace(piece);
    if (!stripped.empty()) out.emplace_back(stripped);
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace sqlnf
