#include "sqlnf/util/text_table.h"

#include <algorithm>

namespace sqlnf {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  if (cols == 0) return "";

  std::vector<size_t> width(cols, 0);
  auto account = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  account(header_);
  for (const auto& row : rows_) account(row);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < cols; ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      line += cell;
      if (i + 1 < cols) {
        line.append(width[i] - cell.size(), ' ');
        line += " | ";
      }
    }
    line += '\n';
    return line;
  };

  std::string out;
  if (!header_.empty()) {
    out += render_row(header_);
    for (size_t i = 0; i < cols; ++i) {
      out.append(width[i], '-');
      if (i + 1 < cols) out += "-+-";
    }
    out += '\n';
  }
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace sqlnf
