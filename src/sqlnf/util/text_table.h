// ASCII table rendering for benchmark / example output.

#ifndef SQLNF_UTIL_TEXT_TABLE_H_
#define SQLNF_UTIL_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace sqlnf {

/// Accumulates rows of strings and renders them as an aligned ASCII table
/// with a header separator, e.g.
///
///   item         | catalog | price
///   -------------+---------+------
///   Fitbit Surge | Amazon  | 240
class TextTable {
 public:
  /// Sets the header row. Clears previously added rows' width cache.
  void SetHeader(std::vector<std::string> header);

  /// Appends one data row. Rows shorter than the header are padded with
  /// empty cells; longer rows extend the column count.
  void AddRow(std::vector<std::string> row);

  /// Renders the table; each line ends with '\n'.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sqlnf

#endif  // SQLNF_UTIL_TEXT_TABLE_H_
