// Status and Result<T>: exception-free error handling in the style of
// Apache Arrow / RocksDB.
//
// Functions that can fail return Status (no payload) or Result<T>
// (payload or error). Callers check `.ok()` before use.

#ifndef SQLNF_UTIL_STATUS_H_
#define SQLNF_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sqlnf {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kOutOfRange,        // index / capacity exceeded (e.g. >64 attributes)
  kNotFound,          // lookup miss (attribute name, file, ...)
  kFailedPrecondition,// object state does not allow the operation
  kParseError,        // constraint / CSV text could not be parsed
  kIoError,           // filesystem problem
  kInternal,          // invariant violation inside the library (a bug)
};

/// Returns a short human-readable name for `code` ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation that has no payload.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Status is cheap to copy (small string optimization covers the
/// common case of short messages).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Accessors assert on misuse in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value — enables `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status — enables
  /// `return Status::Invalid(...);`. The status must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Moves the value out, or returns `fallback` when in error state.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

// Propagate errors: `SQLNF_RETURN_NOT_OK(DoThing());`
#define SQLNF_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::sqlnf::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (false)

// Assign or propagate: `SQLNF_ASSIGN_OR_RETURN(auto x, MakeX());`
#define SQLNF_CONCAT_IMPL(a, b) a##b
#define SQLNF_CONCAT(a, b) SQLNF_CONCAT_IMPL(a, b)
#define SQLNF_ASSIGN_OR_RETURN(lhs, expr)                      \
  auto SQLNF_CONCAT(_res_, __LINE__) = (expr);                 \
  if (!SQLNF_CONCAT(_res_, __LINE__).ok())                     \
    return SQLNF_CONCAT(_res_, __LINE__).status();             \
  lhs = std::move(SQLNF_CONCAT(_res_, __LINE__)).value()

}  // namespace sqlnf

#endif  // SQLNF_UTIL_STATUS_H_
