#include "sqlnf/util/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace sqlnf {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Int(int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kInt;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::Double(double d) {
  JsonValue v;
  v.kind_ = Kind::kDouble;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

int64_t JsonValue::int_value() const {
  if (kind_ == Kind::kDouble) return static_cast<int64_t>(double_);
  return int_;
}

double JsonValue::double_value() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  return double_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

Result<std::string> JsonValue::GetString(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) {
    return Status::Invalid("missing required field '" + key + "'");
  }
  if (!v->is_string()) {
    return Status::Invalid("field '" + key + "' must be a string");
  }
  return v->str_value();
}

int64_t JsonValue::GetInt(const std::string& key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  return v->int_value();
}

namespace {

constexpr int kMaxDepth = 64;

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SQLNF_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::ParseError("JSON: " + msg + " at offset " +
                              std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      SQLNF_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::Str(std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue::Bool(true);
    if (ConsumeWord("false")) return JsonValue::Bool(false);
    if (ConsumeWord("null")) return JsonValue::Null();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Err(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipSpace();
    if (Consume('}')) return JsonValue::Object(std::move(members));
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key string");
      }
      SQLNF_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Err("expected ':' after object key");
      SQLNF_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      members.insert_or_assign(std::move(key), std::move(v));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::Object(std::move(members));
      return Err("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipSpace();
    if (Consume(']')) return JsonValue::Array(std::move(items));
    while (true) {
      SQLNF_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      items.push_back(std::move(v));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::Array(std::move(items));
      return Err("expected ',' or ']' in array");
    }
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) return Err("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Err("invalid hex digit in \\u escape");
            }
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Err(std::string("invalid escape '\\") + e + "'");
      }
    }
    return Err("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      // Accept the full grammar loosely; strtod validates below.
      while (pos_ < text_.size() &&
             (text_[pos_] == '.' || text_[pos_] == 'e' ||
              text_[pos_] == 'E' || text_[pos_] == '+' ||
              text_[pos_] == '-' ||
              (text_[pos_] >= '0' && text_[pos_] <= '9'))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return Err("malformed number");
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return JsonValue::Int(static_cast<int64_t>(v));
      }
      // Out-of-range integers fall through to double.
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("malformed number");
    return JsonValue::Double(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::Separate() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (!wrote_value_.empty()) {
    if (wrote_value_.back()) out_.push_back(',');
    wrote_value_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  Separate();
  out_.push_back('{');
  wrote_value_.push_back(false);
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  wrote_value_.pop_back();
}

void JsonWriter::BeginArray() {
  Separate();
  out_.push_back('[');
  wrote_value_.push_back(false);
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  wrote_value_.pop_back();
}

void JsonWriter::Key(std::string_view key) {
  Separate();
  out_ += JsonQuote(key);
  out_.push_back(':');
  key_pending_ = true;
}

void JsonWriter::String(std::string_view s) {
  Separate();
  out_ += JsonQuote(s);
}

void JsonWriter::Int(int64_t v) {
  Separate();
  out_ += std::to_string(v);
}

void JsonWriter::Double(double v) {
  Separate();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
}

void JsonWriter::Bool(bool b) {
  Separate();
  out_ += b ? "true" : "false";
}

void JsonWriter::Null() {
  Separate();
  out_ += "null";
}

void JsonWriter::Raw(std::string_view json) {
  Separate();
  out_ += json;
}

}  // namespace sqlnf
