#include "sqlnf/util/rng.h"

#include <cassert>

namespace sqlnf {

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Chance(double p) { return NextDouble() < p; }

size_t Rng::Index(size_t size) {
  assert(size > 0);
  return static_cast<size_t>(Uniform(0, static_cast<int64_t>(size) - 1));
}

}  // namespace sqlnf
