// Minimal JSON reading/writing for the service layer (net/) and the
// machine-readable bench outputs.
//
// The wire format of `sqlnf serve` is JSON on both sides: request
// bodies are parsed with ParseJson into a JsonValue tree, responses are
// composed with JsonWriter. The dialect is standard RFC 8259 minus two
// deliberate simplifications on the READ side: numbers are held as
// int64 when they parse exactly as integers (the engine's only numeric
// type) and as double otherwise, and \u escapes outside the BMP are
// not combined into surrogate pairs (each escape decodes to its own
// code point). The WRITE side emits only what the engine produces:
// null, int64, doubles (%.17g), and UTF-8 strings with the mandatory
// control/quote/backslash escapes.
//
// No third-party dependency, no iostreams, no locale sensitivity.

#ifndef SQLNF_UTIL_JSON_H_
#define SQLNF_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sqlnf/util/status.h"

namespace sqlnf {

/// One node of a parsed JSON document. Regular value type; objects and
/// arrays own their children.
class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kInt, kDouble, kString,
                              kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Int(int64_t v);
  static JsonValue Double(double v);
  static JsonValue Str(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue> members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const;     // kInt, or kDouble truncated
  double double_value() const;   // any numeric kind
  const std::string& str_value() const { return str_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::map<std::string, JsonValue>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Required string member of an object.
  Result<std::string> GetString(const std::string& key) const;

  /// Optional int member with a default (also accepts integral doubles).
  int64_t GetInt(const std::string& key, int64_t fallback) const;

 private:
  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage is a ParseError). Depth is bounded to keep hostile inputs
/// from overflowing the stack.
Result<JsonValue> ParseJson(std::string_view text);

/// `s` as a JSON string literal, quotes included.
std::string JsonQuote(std::string_view s);

/// Incremental JSON composer with automatic comma placement.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("ok"); w.Bool(true);
///   w.Key("rows"); w.BeginArray(); w.Int(1); w.Int(2); w.EndArray();
///   w.EndObject();
///   std::string body = std::move(w).Take();
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(std::string_view key);
  void String(std::string_view s);
  void Int(int64_t v);
  void Double(double v);
  void Bool(bool b);
  void Null();
  /// Appends pre-rendered JSON verbatim (caller guarantees validity).
  void Raw(std::string_view json);

  const std::string& str() const& { return out_; }
  std::string Take() && { return std::move(out_); }

 private:
  void Separate();

  std::string out_;
  // One entry per open container: whether a value has been emitted at
  // this level (controls comma placement). `key_pending_` suppresses
  // the separator for the value following a Key().
  std::vector<bool> wrote_value_;
  bool key_pending_ = false;
};

}  // namespace sqlnf

#endif  // SQLNF_UTIL_JSON_H_
