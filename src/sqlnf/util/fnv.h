// FNV-1a 64-bit hashing constants, shared by every hash-bucketing site
// (engine/validate.cc, engine/enforcer.cc).
//
// The validators previously seeded their polynomial hashes with 32-bit
// fragments of the FNV offset basis (0x84222325, 0x51ed270b) while
// multiplying by the 64-bit FNV prime — a mismatch that clusters the
// high bits and measurably inflates bucket collisions. Use the real
// 64-bit pair everywhere instead.

#ifndef SQLNF_UTIL_FNV_H_
#define SQLNF_UTIL_FNV_H_

#include <cstdint>

namespace sqlnf {

/// FNV-1a 64-bit offset basis (0xcbf29ce484222325).
inline constexpr uint64_t kFnv64OffsetBasis = 14695981039346656037ull;

/// FNV-1a 64-bit prime (0x00000100000001b3).
inline constexpr uint64_t kFnv64Prime = 1099511628211ull;

/// Folds one 64-bit word into an FNV-1a state.
inline constexpr uint64_t FnvMix(uint64_t h, uint64_t word) {
  return (h ^ word) * kFnv64Prime;
}

}  // namespace sqlnf

#endif  // SQLNF_UTIL_FNV_H_
