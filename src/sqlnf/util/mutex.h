// Capability-annotated synchronization primitives.
//
// std::mutex carries no thread-safety attributes, so Clang's
// -Wthread-safety analysis cannot see through it. These thin wrappers
// add the capability annotations (util/thread_annotations.h) with zero
// runtime overhead; everything in src/ synchronizes through them — the
// repo linter (tools/lint/sqlnf_lint.py, rule `raw-mutex`) rejects raw
// std::mutex / std::lock_guard / std::condition_variable outside this
// header, so new locking is annotated by construction.
//
// Besides the mutex, this header defines ThreadRole: a PHANTOM
// capability with no runtime state, used to encode thread-DISCIPLINE
// contracts ("only the writer thread may call this") that no mutex
// expresses. Acquiring a role is a no-op at runtime; the value is that
// functions annotated SQLNF_REQUIRES(role) become compile-time
// unreachable from contexts that never entered a RoleScope — see
// engine/writer_role.h for the engine's WriterThread role.

#ifndef SQLNF_UTIL_MUTEX_H_
#define SQLNF_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "sqlnf/util/thread_annotations.h"

namespace sqlnf {

/// An annotated std::mutex. Lock/Unlock carry acquire/release
/// attributes; the lowercase BasicLockable spelling exists so CondVar
/// (std::condition_variable_any underneath) can wait on it directly.
class SQLNF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SQLNF_ACQUIRE() { mu_.lock(); }
  void Unlock() SQLNF_RELEASE() { mu_.unlock(); }
  bool TryLock() SQLNF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable, for std::condition_variable_any.
  void lock() SQLNF_ACQUIRE() { mu_.lock(); }
  void unlock() SQLNF_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock — the annotated stand-in for std::lock_guard.
class SQLNF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SQLNF_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SQLNF_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex. Wait() must be called with the mutex
/// held; it releases/reacquires internally (invisible to the analysis,
/// which correctly treats the capability as held across the wait —
/// guarded state may have changed, so callers re-test their predicate
/// in a loop, which spurious wakeups force anyway).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) SQLNF_REQUIRES(mu) { cv_.wait(mu); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// A phantom capability: no runtime state, pure compile-time token.
/// Functions annotated SQLNF_REQUIRES(some_role) are callable only
/// from scopes that acquired the role via RoleScope.
class SQLNF_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;
};

/// Scoped acquisition of a ThreadRole. Constructing one asserts "this
/// scope runs on the thread the role names" — a claim the programmer
/// makes exactly once at the top of a thread's entry function, and the
/// analysis then checks every call underneath it.
class SQLNF_SCOPED_CAPABILITY RoleScope {
 public:
  explicit RoleScope(ThreadRole& role) SQLNF_ACQUIRE(role) { (void)role; }
  ~RoleScope() SQLNF_RELEASE() {}

  RoleScope(const RoleScope&) = delete;
  RoleScope& operator=(const RoleScope&) = delete;
};

}  // namespace sqlnf

#endif  // SQLNF_UTIL_MUTEX_H_
