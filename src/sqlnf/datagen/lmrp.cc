#include "sqlnf/datagen/lmrp.h"

#include <array>
#include <set>
#include <string>
#include <vector>

#include "sqlnf/constraints/parser.h"
#include "sqlnf/util/rng.h"

namespace sqlnf {

namespace {

constexpr const char* kContactColumns[] = {
    "contact_id", "first_name", "last_name", "title", "address1",
    "address2",   "city",       "state_id",  "zip",   "phone",
    "fax",        "email",      "status",    "notes"};

struct SnippetRow {
  int contact_id;
  const char* first_name;
  const char* last_name;
  const char* city;  // nullptr = ⊥
  int state_id;
};

// Figure 7, verbatim.
constexpr SnippetRow kSnippet[] = {
    {113, "Michelle", "Moscato", "Carmel", 20},
    {110, "Kathy", "Sheehan", "Columbia", 48},
    {51, "Kathy", "Sheehan", "Columbia", 48},
    {64, "Margaret", "Cox", "Columbia", 48},
    {120, "Margaret", "Cox", "Columbia", 48},
    {60, "Stacey", "Brennan, M.D.", "Columbia", 48},
    {6, "Robert", "Kamps, M.D.", "Grove City", 42},
    {83, "Michelle", "Moscato", "Indianapolis", 20},
    {19, "Michelle", "Moscato", "Indianapolis", 20},
    {20, "Nancy", "Knudson", "Indianapolis", 20},
    {18, "Nancy", "Knudson", "Indianapolis", 20},
    {99, "Stacey", "Brennan, M.D.", "Indianapolis", 20},
    {8, "Carol", "Richards", nullptr, 36},
    {7, "Pam", "Baumker", nullptr, 36},
};

const std::array<const char*, 24> kFirstNames = {
    "Alice",  "Brian",  "Cindy",   "Derek",  "Elena",  "Frank",
    "Gloria", "Henry",  "Irene",   "Jack",   "Karen",  "Louis",
    "Maria",  "Nathan", "Olivia",  "Peter",  "Quinn",  "Rachel",
    "Samuel", "Teresa", "Ulysses", "Violet", "Walter", "Xenia"};
const std::array<const char*, 20> kLastNames = {
    "Anderson", "Baker",   "Carter", "Dawson",  "Ellis",
    "Foster",   "Gibson",  "Hayes",  "Ingram",  "Jennings",
    "Keller",   "Lawson",  "Mercer", "Norris",  "Osborne",
    "Parker",   "Quimby",  "Reyes",  "Sutton",  "Tanner"};
struct CityState {
  const char* city;
  int state;
};
const std::array<CityState, 10> kCities = {{{"Columbus", 36},
                                            {"Baltimore", 21},
                                            {"Nashville", 47},
                                            {"Denver", 8},
                                            {"Portland", 41},
                                            {"Madison", 55},
                                            {"Augusta", 23},
                                            {"Trenton", 34},
                                            {"Phoenix", 4},
                                            {"Boise", 16}}};

Result<TableSchema> ContactSchema(int num_columns) {
  std::vector<std::string> names;
  for (int i = 0; i < num_columns; ++i) names.push_back(kContactColumns[i]);
  // Paper: first_name, last_name, state_id contain no nulls.
  return TableSchema::Make("contact_draft_lookup", names,
                           {"contact_id", "first_name", "last_name",
                            "state_id"});
}

void AppendContactRow(Table* table, int contact_id, const std::string& fn,
                      const std::string& ln, const Value& city, int state,
                      Rng* rng) {
  std::vector<Value> row(table->num_columns());
  row[0] = Value::Int(contact_id);
  row[1] = Value::Str(fn);
  row[2] = Value::Str(ln);
  if (table->num_columns() > 5) {
    row[3] = rng->Chance(0.3) ? Value::Str("M.D.") : Value::Null();
    row[4] = Value::Str(std::to_string(100 + contact_id) + " Main St");
    row[5] = rng->Chance(0.15) ? Value::Str("Suite " + std::to_string(
                                     1 + contact_id % 40))
                               : Value::Null();
    row[6] = city;
    row[7] = Value::Int(state);
    row[8] = city.is_null()
                 ? Value::Null()
                 : Value::Str(std::to_string(10000 + 37 * state));
    row[9] = Value::Str("555-" + std::to_string(1000 + contact_id));
    row[10] = rng->Chance(0.5)
                  ? Value::Str("555-" + std::to_string(9000 + contact_id))
                  : Value::Null();
    row[11] = Value::Str(fn + "." + ln + "@example.gov");
    row[12] = rng->Chance(0.8) ? Value::Str("A") : Value::Str("I");
    row[13] = rng->Chance(0.25) ? Value::Str("migrated record")
                                : Value::Null();
  } else {
    row[3] = city;
    row[4] = Value::Int(state);
  }
  Status st = table->AddRow(Tuple(std::move(row)));
  (void)st;
}

}  // namespace

Result<Table> ContactDraftLookupSnippet() {
  SQLNF_ASSIGN_OR_RETURN(
      TableSchema schema,
      TableSchema::Make("contact_snippet",
                        {"contact_id", "first_name", "last_name", "city",
                         "state_id"},
                        {"contact_id", "first_name", "last_name",
                         "state_id"}));
  Table table(std::move(schema));
  Rng rng(7);
  for (const SnippetRow& r : kSnippet) {
    AppendContactRow(&table, r.contact_id, r.first_name, r.last_name,
                     r.city ? Value::Str(r.city) : Value::Null(), r.state_id,
                     &rng);
  }
  return table;
}

Result<Table> ContactDraftLookup() {
  SQLNF_ASSIGN_OR_RETURN(TableSchema schema, ContactSchema(14));
  Table table(std::move(schema));
  Rng rng(2016);

  // Contact ids: the snippet's 14 plus the remaining numbers in 1..124.
  std::set<int> used;
  for (const SnippetRow& r : kSnippet) used.insert(r.contact_id);
  std::vector<int> free_ids;
  for (int id = 1; id <= 124; ++id) {
    if (!used.contains(id)) free_ids.push_back(id);
  }

  for (const SnippetRow& r : kSnippet) {
    AppendContactRow(&table, r.contact_id, r.first_name, r.last_name,
                     r.city ? Value::Str(r.city) : Value::Null(), r.state_id,
                     &rng);
  }

  // 110 generated rows: 95 fresh (first,last,city,state) combos plus 15
  // duplicates of generated combos, giving 105 distinct combos overall
  // (snippet contributes 10) and 19 redundancy sources (4 + 15).
  // Generated names are unique (first,last) pairs distinct from the
  // snippet's, each bound to exactly one city, so σ keeps holding and no
  // weak collision with the ⊥-city snippet rows arises.
  struct Combo {
    std::string fn, ln;
    const CityState* cs;
  };
  std::vector<Combo> combos;
  int name_idx = 0;
  for (int i = 0; i < 95; ++i) {
    Combo c;
    c.fn = kFirstNames[name_idx % kFirstNames.size()];
    c.ln = kLastNames[(name_idx / kFirstNames.size()) % kLastNames.size()];
    ++name_idx;
    c.cs = &kCities[i % kCities.size()];
    combos.push_back(std::move(c));
  }
  size_t id_cursor = 0;
  for (const Combo& c : combos) {
    AppendContactRow(&table, free_ids[id_cursor++], c.fn, c.ln,
                     Value::Str(c.cs->city), c.cs->state, &rng);
  }
  for (int d = 0; d < 15; ++d) {
    const Combo& c = combos[(d * 7) % combos.size()];
    AppendContactRow(&table, free_ids[id_cursor++], c.fn, c.ln,
                     Value::Str(c.cs->city), c.cs->state, &rng);
  }
  return table;
}

Result<FunctionalDependency> ContactSigmaFd(const TableSchema& schema) {
  return ParseFd(schema,
                 "first_name,last_name,city ->w "
                 "first_name,last_name,city,state_id");
}

namespace {

constexpr const char* kContractorColumns[] = {
    "contractor_id",   "contractor_name", "contractor_bus_name",
    "address1",        "address2",        "city",
    "state",           "zip",             "phone",
    "fax",             "url",             "email",
    "cmd_name",        "contractor_type_id", "contractor_version",
    "status_flag",     "dmerc_rgn",       "status",
    "eff_date",        "end_date",        "region_code",
    "notes"};

}  // namespace

Result<Table> Contractor() {
  std::vector<std::string> names;
  for (const char* n : kContractorColumns) names.push_back(n);
  SQLNF_ASSIGN_OR_RETURN(
      TableSchema schema,
      TableSchema::Make("contractor", names,
                        {"contractor_id", "city", "url", "phone",
                         "cmd_name", "address1", "contractor_bus_name",
                         "contractor_type_id", "status",
                         "contractor_version", "status_flag"}));
  Table table(std::move(schema));

  // Group scaffolding (see lmrp.h):
  //   g1 ∈ [0,38)  — (city,url) classes; dmerc_rgn/status uniform
  //                  g1 = 0 carries ⊥ dmerc_rgn and 135 rows;
  //                  g1 = 1 has 2 rows; g1 = 2..37 one row each.
  //   g2 ∈ [0,67)  — (cmd_name,phone,url) classes refining g1:
  //                  g1=0 → g2 0..29, g1=k≥1 → g2 29+k.
  //   g3 ∈ [0,73)  — (address1,bus_name,type_id) classes refining g1:
  //                  g1=0 → g3 0..35, g1=k≥1 → g3 35+k.
  struct RowPlan {
    int g1, g2, g3;
  };
  std::vector<RowPlan> plans;
  for (int i = 0; i < 135; ++i) {
    plans.push_back({0, i % 30, i % 36});
  }
  plans.push_back({1, 30, 36});
  plans.push_back({1, 30, 36});
  for (int g1 = 2; g1 < 38; ++g1) {
    plans.push_back({g1, 29 + g1, 35 + g1});
  }
  // 135 + 2 + 36 = 173 rows; g2 classes: 30 + 37 = 67; g3: 36 + 37 = 73.

  Rng rng(173);
  rng.Shuffle(&plans);

  for (size_t i = 0; i < plans.size(); ++i) {
    const RowPlan& p = plans[i];
    std::vector<Value> row(table.num_columns());
    const std::string g1s = std::to_string(p.g1);
    const std::string g2s = std::to_string(p.g2);
    const std::string g3s = std::to_string(p.g3);
    row[0] = Value::Int(static_cast<int64_t>(i) + 1);   // contractor_id
    row[1] = Value::Str("Contractor " + std::to_string(i + 1));
    row[2] = Value::Str("BusName g3-" + g3s);           // bus_name: B(g3)
    row[3] = Value::Str(g3s + " Medicare Way");         // address1: A(g3)
    row[4] = rng.Chance(0.2) ? Value::Str("Floor " + g3s) : Value::Null();
    row[5] = Value::Str("City g1-" + g1s);              // city: C(g1)
    row[6] = Value::Str("ST" + std::to_string(p.g1 % 12));
    row[7] = Value::Str(std::to_string(20000 + p.g1));
    row[8] = Value::Str("800-" + std::to_string(2000 + p.g2));  // P(g2)
    row[9] = rng.Chance(0.4) ? Value::Str("800-" + std::to_string(
                                   7000 + p.g2))
                             : Value::Null();
    row[10] = Value::Str("http://mac" + g1s + ".cms.gov");      // U(g1)
    row[11] = rng.Chance(0.7) ? Value::Str("mac" + g1s + "@cms.gov")
                              : Value::Null();
    row[12] = Value::Str("CMD Region " + std::to_string(p.g2 % 9));
    row[13] = Value::Str(std::to_string(1 + p.g3 % 5));  // type_id: T(g3)
    row[14] = Value::Str("v" + std::to_string(3 + p.g2 % 4));  // V(g2)
    row[15] = Value::Str(p.g2 % 2 == 0 ? "Y" : "N");           // F(g2)
    row[16] = p.g1 == 0 ? Value::Null()
                        : Value::Str("R" + std::to_string(p.g1 % 4));
    row[17] = Value::Str(p.g1 % 3 == 0 ? "active" : "retired");  // S(g1)
    row[18] = Value::Str("2015-0" + std::to_string(1 + p.g1 % 9) + "-01");
    row[19] = rng.Chance(0.15) ? Value::Str("2016-06-30") : Value::Null();
    row[20] = Value::Str("RC" + std::to_string(p.g1 % 7));
    row[21] = rng.Chance(0.25) ? Value::Str("carry-over entry")
                               : Value::Null();
    SQLNF_RETURN_NOT_OK(table.AddRow(Tuple(std::move(row))));
  }
  return table;
}

Result<ConstraintSet> ContractorLambdaFds(const TableSchema& schema) {
  return ParseConstraintSet(
      schema,
      "city,url ->w city,url,dmerc_rgn,status; "
      "cmd_name,phone,url ->w cmd_name,phone,url,contractor_version,"
      "status_flag; "
      "address1,contractor_bus_name,contractor_type_id ->w "
      "address1,contractor_bus_name,contractor_type_id,url");
}

}  // namespace sqlnf
