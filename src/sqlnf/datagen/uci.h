// UCI-shaped synthetic datasets for the Section 7 discovery-cost
// comparison (breast-cancer 11×699, adult 14×48842, hepatitis 20×155).
// We do not redistribute the UCI originals; these generators reproduce
// the column/row shapes, domain cardinalities and null-ness that drive
// discovery cost (see DESIGN.md substitution table).

#ifndef SQLNF_DATAGEN_UCI_H_
#define SQLNF_DATAGEN_UCI_H_

#include <string>

#include "sqlnf/core/table.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// 11 columns × 699 rows: near-unique id column, nine discretized
/// 1..10 features (one with sparse ⊥), binary class.
Result<Table> UciBreastCancerShaped(uint64_t seed = 1);

/// 14 columns × `rows` rows (default 48842): mixed-cardinality census
/// columns, ⊥ in workclass/occupation/native_country.
Result<Table> UciAdultShaped(int rows = 48842, uint64_t seed = 2);

/// 20 columns × 155 rows: mostly binary medical features with frequent
/// ⊥ (the original has 8k+ accidental FDs thanks to tiny row count).
Result<Table> UciHepatitisShaped(uint64_t seed = 3);

}  // namespace sqlnf

#endif  // SQLNF_DATAGEN_UCI_H_
