// Synthetic table generation (the stand-in for the paper's 130 mined
// public tables — see DESIGN.md, substitution table).
//
// Tables are generated column-first with bounded domains, then planted
// FDs overwrite their RHS columns as deterministic functions of the LHS
// group, so the FDs hold by construction. Knobs inject the phenomena
// the paper's corpus exhibits:
//   * nulls        — per-column ⊥ rates (columns outside planted FDs),
//   * duplicates   — rows copied verbatim (violate every key, satisfy
//                    every FD — Figure 3's phenomenon),
//   * dirty rows   — FD-violating perturbations ("constraints that
//                    should hold but are violated by dirty data"),
//   * near-keys    — wide-LHS FDs whose projection removes few rows
//                    (the ≥78% mode of Figure 6's bimodal distribution).
//
// Everything is seeded and deterministic.

#ifndef SQLNF_DATAGEN_GENERATOR_H_
#define SQLNF_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sqlnf/core/table.h"
#include "sqlnf/util/rng.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// An FD planted into generated data: every RHS column becomes a
/// deterministic function of the LHS columns' values.
struct PlantedFd {
  std::vector<int> lhs;
  std::vector<int> rhs;
};

struct TableSpec {
  std::string name = "synthetic";
  int num_columns = 6;
  int num_rows = 100;
  /// Domain size per column; missing entries default to
  /// max(2, num_rows / 4).
  std::vector<int> domain_sizes;
  /// ⊥ probability per column; missing entries default to 0.
  std::vector<double> null_rates;
  std::vector<PlantedFd> fds;
  /// Probability that a row is a verbatim copy of an earlier row.
  double duplicate_rate = 0.0;
  /// Probability that a row perturbs one planted-FD RHS (dirty data).
  double dirty_rate = 0.0;
  uint64_t seed = 42;
};

/// Generates a table per `spec`. Column names are c0..c{n-1}; values are
/// strings "c<col>_v<code>". The schema NFS is left empty (mining infers
/// null-free columns from the data).
Result<Table> GenerateTable(const TableSpec& spec);

/// A corpus profile: one "data source" contributing several tables with
/// a shared character (sizes, null-ness, FD density, dirtiness).
struct CorpusProfile {
  std::string name;
  int num_tables = 10;
  int min_columns = 5, max_columns = 12;
  int min_rows = 40, max_rows = 400;
  double null_rate = 0.05;
  int planted_fds = 2;
  double duplicate_rate = 0.05;
  double dirty_rate = 0.0;
  /// Fraction of planted FDs given wide (near-key) LHSs.
  double near_key_fraction = 0.3;
};

/// The default 7-profile, 130-table corpus standing in for GO-termdb,
/// IPI, LMRP, PFAM, RFAM, Naumann and UCI (Section 7).
std::vector<CorpusProfile> DefaultCorpusProfiles();

/// Generates all tables of all profiles (deterministic from `seed`).
Result<std::vector<Table>> BuildCorpus(
    const std::vector<CorpusProfile>& profiles, uint64_t seed = 2016);

}  // namespace sqlnf

#endif  // SQLNF_DATAGEN_GENERATOR_H_
