// Replicas of the two LMRP (Local Medical Review Policy) tables used in
// the paper's qualitative experiments (Section 7). We do not have the
// CMS originals; these replicas are built to reproduce every structural
// property the paper reports (see DESIGN.md substitution table):
//
// contact_draft_lookup (14 columns × 124 rows):
//  * contains the exact 14-row × 5-column snippet of Figure 7,
//  * satisfies σ: first_name,last_name,city →w
//        first_name,last_name,city,state_id  (a λ-FD),
//  * first_name, last_name, state_id are null-free; city has ⊥s,
//  * the set projection on [first_name,last_name,city,state_id] has
//    105 rows (19 redundancy sources eliminated),
//  * c⟨first_name,last_name,city⟩ holds on that projection,
//  * city →w state_id fails (already on the snippet),
//  * first_name,last_name → state_id fails ("people move").
//
// contractor (22 columns × 173 rows):
//  * satisfies the three λ-FDs of Section 7:
//      1. city,url →w dmerc_rgn,status
//      2. cmd_name,phone,url →w contractor_version,status_flag
//      3. address1,contractor_bus_name,contractor_type_id →w url
//  * Algorithm 3 with those FDs yields four tables of 38×4, 67×5,
//    73×4 and 173×17 (multiset) cells = 3720 total vs 3806 before,
//  * eliminating 448 redundant data values (1 dmerc_rgn, 135 status,
//    106 contractor_version, 106 status_flag, 100 url) plus 134
//    redundant null markers in dmerc_rgn.

#ifndef SQLNF_DATAGEN_LMRP_H_
#define SQLNF_DATAGEN_LMRP_H_

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/core/table.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// The 14×5 snippet of Figure 7 (exact rows).
Result<Table> ContactDraftLookupSnippet();

/// The full 14-column × 124-row replica.
Result<Table> ContactDraftLookup();

/// σ, the λ-FD used to decompose contact_draft_lookup, over the given
/// table's schema (works for both the snippet and the full replica).
Result<FunctionalDependency> ContactSigmaFd(const TableSchema& schema);

/// The 22-column × 173-row contractor replica.
Result<Table> Contractor();

/// The three λ-FDs of the contractor experiment, as total c-FDs.
Result<ConstraintSet> ContractorLambdaFds(const TableSchema& schema);

}  // namespace sqlnf

#endif  // SQLNF_DATAGEN_LMRP_H_
