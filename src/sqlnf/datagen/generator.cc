#include "sqlnf/datagen/generator.h"

#include <algorithm>

namespace sqlnf {

namespace {

// Deterministic mixing for planted-FD RHS values.
uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

Result<Table> GenerateTable(const TableSpec& spec) {
  if (spec.num_columns <= 0 || spec.num_rows < 0) {
    return Status::Invalid("table spec needs positive dimensions");
  }
  if (spec.num_columns > AttributeSet::kMaxAttributes) {
    return Status::OutOfRange("at most 64 columns");
  }
  for (const PlantedFd& fd : spec.fds) {
    for (int c : fd.lhs) {
      if (c < 0 || c >= spec.num_columns) {
        return Status::Invalid("planted FD LHS column out of range");
      }
    }
    for (int c : fd.rhs) {
      if (c < 0 || c >= spec.num_columns) {
        return Status::Invalid("planted FD RHS column out of range");
      }
    }
  }

  std::vector<std::string> names;
  names.reserve(spec.num_columns);
  for (int c = 0; c < spec.num_columns; ++c) {
    names.push_back("c" + std::to_string(c));
  }
  SQLNF_ASSIGN_OR_RETURN(TableSchema schema,
                         TableSchema::Make(spec.name, std::move(names)));
  Table table(std::move(schema));

  auto domain_of = [&](int col) {
    if (col < static_cast<int>(spec.domain_sizes.size()) &&
        spec.domain_sizes[col] > 0) {
      return spec.domain_sizes[col];
    }
    return std::max(2, spec.num_rows / 4);
  };
  auto null_rate_of = [&](int col) {
    if (col < static_cast<int>(spec.null_rates.size())) {
      return spec.null_rates[col];
    }
    return 0.0;
  };

  // Columns touched by planted FDs stay null-free so the plants hold as
  // certain FDs by construction (⊥ on either side would break them).
  AttributeSet fd_columns;
  for (const PlantedFd& fd : spec.fds) {
    for (int c : fd.lhs) fd_columns.Add(c);
    for (int c : fd.rhs) fd_columns.Add(c);
  }

  Rng rng(spec.seed);
  for (int r = 0; r < spec.num_rows; ++r) {
    if (r > 0 && rng.Chance(spec.duplicate_rate)) {
      Status st = table.AddRow(
          table.row(static_cast<int>(rng.Index(table.num_rows()))));
      (void)st;
      continue;
    }
    // Base codes.
    std::vector<int64_t> codes(spec.num_columns);
    for (int c = 0; c < spec.num_columns; ++c) {
      codes[c] = rng.Uniform(0, domain_of(c) - 1);
    }
    // Planted FDs, in order (later plants see earlier plants' outputs).
    for (size_t f = 0; f < spec.fds.size(); ++f) {
      const PlantedFd& fd = spec.fds[f];
      uint64_t h = Mix(0xabcdef, f);
      for (int c : fd.lhs) h = Mix(h, static_cast<uint64_t>(codes[c]));
      for (int c : fd.rhs) {
        codes[c] = static_cast<int64_t>(Mix(h, c) %
                                        static_cast<uint64_t>(domain_of(c)));
      }
    }
    // Dirty rows: perturb one planted RHS so the FD no longer holds
    // exactly (kept rare by spec.dirty_rate).
    if (!spec.fds.empty() && rng.Chance(spec.dirty_rate)) {
      const PlantedFd& fd = spec.fds[rng.Index(spec.fds.size())];
      if (!fd.rhs.empty()) {
        int c = fd.rhs[rng.Index(fd.rhs.size())];
        codes[c] = rng.Uniform(0, domain_of(c) - 1);
      }
    }
    // Materialize with nulls.
    std::vector<Value> row(spec.num_columns);
    for (int c = 0; c < spec.num_columns; ++c) {
      if (!fd_columns.Contains(c) && rng.Chance(null_rate_of(c))) {
        row[c] = Value::Null();
      } else {
        row[c] = Value::Str("c" + std::to_string(c) + "_v" +
                            std::to_string(codes[c]));
      }
    }
    SQLNF_RETURN_NOT_OK(table.AddRow(Tuple(std::move(row))));
  }
  return table;
}

std::vector<CorpusProfile> DefaultCorpusProfiles() {
  // Seven profiles standing in for the paper's seven sources. Tables
  // sum to 130. Character varies: biology-style wide keyed tables,
  // medical tables with many nulls and dirty near-keys, benchmark
  // tables with dense FDs, ML tables with duplicates.
  // Column domains are kept small relative to the row counts (see
  // BuildCorpus) so that accidental minimal LHSs would need more
  // attributes than the miner's LHS cap — matching the real corpora,
  // where a 130-table sweep yields only a few minimal FDs per table.
  return {
      {"go_termdb", 20, 4, 7, 150, 400, 0.02, 2, 0.02, 0.00, 0.2},
      {"ipi", 18, 4, 8, 150, 450, 0.04, 2, 0.05, 0.01, 0.2},
      {"lmrp", 22, 5, 9, 120, 240, 0.12, 3, 0.08, 0.03, 0.5},
      {"pfam", 18, 4, 7, 150, 500, 0.03, 2, 0.03, 0.00, 0.3},
      {"rfam", 16, 4, 7, 120, 350, 0.03, 2, 0.03, 0.00, 0.3},
      {"naumann", 18, 5, 9, 150, 600, 0.06, 3, 0.04, 0.02, 0.4},
      {"uci", 18, 4, 8, 150, 500, 0.08, 2, 0.10, 0.02, 0.4},
  };
}

Result<std::vector<Table>> BuildCorpus(
    const std::vector<CorpusProfile>& profiles, uint64_t seed) {
  std::vector<Table> corpus;
  Rng rng(seed);
  for (const CorpusProfile& profile : profiles) {
    for (int t = 0; t < profile.num_tables; ++t) {
      TableSpec spec;
      spec.name = profile.name + "_" + std::to_string(t);
      spec.num_columns = static_cast<int>(
          rng.Uniform(profile.min_columns, profile.max_columns));
      spec.num_rows =
          static_cast<int>(rng.Uniform(profile.min_rows, profile.max_rows));
      // Low-entropy columns: small domains keep accidental minimal
      // LHSs beyond the miner's LHS-size cap (see DefaultCorpusProfiles).
      spec.domain_sizes.resize(spec.num_columns);
      for (int c = 0; c < spec.num_columns; ++c) {
        spec.domain_sizes[c] = static_cast<int>(rng.Uniform(2, 9));
      }
      // Roughly half the tables carry an id-like first column (unique
      // in practice): its FDs are mined but, being a certain key, do
      // not qualify as λ-FDs — as in the real corpora, where most
      // total FDs sit on (near-)key LHSs.
      const bool has_id_column = rng.Chance(0.55);
      if (has_id_column) {
        spec.domain_sizes[0] = spec.num_rows * 16;
        spec.duplicate_rate = 0.0;  // keep the key intact
      } else {
        spec.duplicate_rate = profile.duplicate_rate;
      }
      spec.null_rates.assign(spec.num_columns, profile.null_rate);
      if (has_id_column) spec.null_rates[0] = 0.0;
      spec.dirty_rate = profile.dirty_rate;
      spec.seed = seed * 7919 + corpus.size();

      // Planted FDs come in the two modes behind Figure 6's bimodal
      // projection-size distribution:
      //  * near-key plants: a single high-cardinality LHS column that
      //    SHOULD be a key but collides occasionally (dirty near-keys,
      //    projection sizes ≳ 78%),
      //  * genuine plants: a single low-entropy LHS column whose
      //    projection removes most rows (sizes ≲ 15%).
      std::vector<int> cols(spec.num_columns);
      for (int c = 0; c < spec.num_columns; ++c) cols[c] = c;
      rng.Shuffle(&cols);
      int next_col = has_id_column && cols[0] == 0 ? 1 : 0;
      for (int f = 0; f < profile.planted_fds; ++f) {
        if (next_col + 1 >= spec.num_columns) break;
        int lhs_col = cols[next_col];
        int rhs_col = cols[next_col + 1];
        if (lhs_col == 0 && has_id_column) {
          ++next_col;
          continue;  // the id column determines everything already
        }
        next_col += 2;
        if (rng.Chance(profile.near_key_fraction)) {
          spec.domain_sizes[lhs_col] = spec.num_rows * 3;  // near-unique
        }
        spec.fds.push_back({{lhs_col}, {rhs_col}});
      }

      SQLNF_ASSIGN_OR_RETURN(Table table, GenerateTable(spec));
      corpus.push_back(std::move(table));
    }
  }
  return corpus;
}

}  // namespace sqlnf
