#include "sqlnf/datagen/uci.h"

#include <vector>

#include "sqlnf/util/rng.h"

namespace sqlnf {

namespace {

struct ColumnSpec {
  std::string name;
  int domain;
  double null_rate = 0.0;
};

Result<Table> Generate(const std::string& table_name,
                       const std::vector<ColumnSpec>& columns, int rows,
                       uint64_t seed) {
  std::vector<std::string> names;
  names.reserve(columns.size());
  for (const ColumnSpec& c : columns) names.push_back(c.name);
  SQLNF_ASSIGN_OR_RETURN(TableSchema schema,
                         TableSchema::Make(table_name, std::move(names)));
  Table table(std::move(schema));
  Rng rng(seed);
  for (int r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.reserve(columns.size());
    for (const ColumnSpec& c : columns) {
      if (c.null_rate > 0 && rng.Chance(c.null_rate)) {
        row.push_back(Value::Null());
      } else {
        row.push_back(Value::Int(rng.Uniform(0, c.domain - 1)));
      }
    }
    SQLNF_RETURN_NOT_OK(table.AddRow(Tuple(std::move(row))));
  }
  return table;
}

}  // namespace

Result<Table> UciBreastCancerShaped(uint64_t seed) {
  return Generate("breast_cancer",
                  {{"id", 645, 0.0},  // real ids repeat occasionally
                   {"clump_thickness", 10},
                   {"cell_size", 10},
                   {"cell_shape", 10},
                   {"adhesion", 10},
                   {"epithelial_size", 10},
                   {"bare_nuclei", 10, 0.023},  // 16/699 missing
                   {"bland_chromatin", 10},
                   {"normal_nucleoli", 10},
                   {"mitoses", 9},
                   {"class", 2}},
                  699, seed);
}

Result<Table> UciAdultShaped(int rows, uint64_t seed) {
  return Generate("adult",
                  {{"age", 74},
                   {"workclass", 9, 0.056},
                   {"fnlwgt", 28000},
                   {"education", 16},
                   {"education_num", 16},
                   {"marital_status", 7},
                   {"occupation", 15, 0.057},
                   {"relationship", 6},
                   {"race", 5},
                   {"sex", 2},
                   {"capital_gain", 120},
                   {"capital_loss", 99},
                   {"hours_per_week", 96},
                   {"native_country", 42, 0.018}},
                  rows, seed);
}

Result<Table> UciHepatitisShaped(uint64_t seed) {
  std::vector<ColumnSpec> columns = {{"class", 2}, {"age", 50},
                                     {"sex", 2}};
  // 13 binary symptom columns with varying missingness.
  const char* symptoms[] = {"steroid",     "antivirals", "fatigue",
                            "malaise",     "anorexia",   "liver_big",
                            "liver_firm",  "spleen",     "spiders",
                            "ascites",     "varices",    "histology",
                            "sgot_high"};
  int i = 0;
  for (const char* s : symptoms) {
    // Missingness is what separates c-FD counts from classical counts
    // on the real hepatitis data (⊥ widens weak similarity).
    columns.push_back({s, 2, 0.10 + 0.06 * (i++ % 4)});
  }
  columns.push_back({"bilirubin", 35, 0.04});
  columns.push_back({"alk_phosphate", 80, 0.19});
  columns.push_back({"albumin", 30, 0.10});
  columns.push_back({"protime", 45, 0.43});
  return Generate("hepatitis", columns, 155, seed);
}

}  // namespace sqlnf
