#include "sqlnf/reasoning/closure.h"

#include <algorithm>

namespace sqlnf {

AttributeSet PClosureNaive(const ConstraintSet& sigma,
                           const AttributeSet& nfs, const AttributeSet& x) {
  AttributeSet c = x;
  AttributeSet c_old;
  do {
    c_old = c;
    for (const auto& fd : sigma.fds()) {
      if (fd.is_certain() && fd.lhs.IsSubsetOf(c)) {
        c = c.Union(fd.rhs);
      }
    }
    for (const auto& fd : sigma.fds()) {
      if (fd.is_possible() &&
          fd.lhs.IsSubsetOf(c.Intersect(nfs).Union(x))) {
        c = c.Union(fd.rhs);
      }
    }
  } while (!(c == c_old));
  return c;
}

AttributeSet CClosureNaive(const ConstraintSet& sigma,
                           const AttributeSet& nfs, const AttributeSet& x) {
  AttributeSet c = x.Intersect(nfs);
  AttributeSet c_old;
  do {
    c_old = c;
    for (const auto& fd : sigma.fds()) {
      if (fd.is_certain() && fd.lhs.IsSubsetOf(c.Union(x))) {
        c = c.Union(fd.rhs);
      }
    }
    for (const auto& fd : sigma.fds()) {
      if (fd.is_possible() && fd.lhs.IsSubsetOf(c.Intersect(nfs))) {
        c = c.Union(fd.rhs);
      }
    }
  } while (!(c == c_old));
  return c;
}

ClosureEngine::ClosureEngine(const ConstraintSet& sigma, AttributeSet nfs)
    : nfs_(nfs) {
  for (const auto& fd : sigma.fds()) {
    fds_.push_back({fd.lhs, fd.rhs, fd.is_possible()});
    for (AttributeId a : fd.lhs) {
      num_attrs_ = std::max(num_attrs_, a + 1);
    }
    for (AttributeId a : fd.rhs) {
      num_attrs_ = std::max(num_attrs_, a + 1);
    }
  }
  weak_lists_.assign(num_attrs_, {});
  strong_lists_.assign(num_attrs_, {});
  for (int i = 0; i < static_cast<int>(fds_.size()); ++i) {
    for (AttributeId a : fds_[i].lhs) {
      (fds_[i].strong ? strong_lists_ : weak_lists_)[a].push_back(i);
    }
  }
}

AttributeSet ClosureEngine::Run(ClosureKind kind,
                                const AttributeSet& x) const {
  // Availability sets for the two firing predicates. An FD fires once
  // every LHS attribute is "available" for its predicate class:
  //   kP: weak-avail = C,             strong-avail = (C ∩ T_S) ∪ X
  //   kC: weak-avail = C ∪ X,         strong-avail = C ∩ T_S
  // C grows monotonically, so both availability sets do too; we track
  // them explicitly and count down per-FD unmet counters.
  AttributeSet closure = kind == kP ? x : x.Intersect(nfs_);
  AttributeSet weak_avail = kind == kP ? closure : x;
  AttributeSet strong_avail = x.Intersect(nfs_);
  if (kind == kP) strong_avail = strong_avail.Union(x);  // (C∩T_S) ∪ X ⊇ X

  std::vector<int> unmet(fds_.size());
  std::vector<int> ready;  // FD indices whose counter reached zero
  for (size_t i = 0; i < fds_.size(); ++i) {
    const AttributeSet avail = fds_[i].strong ? strong_avail : weak_avail;
    unmet[i] = fds_[i].lhs.Difference(avail).size();
    if (unmet[i] == 0) ready.push_back(static_cast<int>(i));
  }

  // Events: attribute becomes weakly / strongly available.
  std::vector<std::pair<AttributeId, bool>> events;  // (attr, strong?)
  auto add_to_closure = [&](AttributeId a) {
    if (closure.Contains(a)) return;
    closure.Add(a);
    // C gained `a`; derive availability transitions.
    bool now_weak = kind == kP ? true /* weak-avail = C */
                               : true /* weak-avail = C ∪ X ∋ a */;
    bool now_strong = nfs_.Contains(a);  // both predicates need A ∈ T_S
                                         // once past the initial X seed
    if (now_weak && !weak_avail.Contains(a)) {
      weak_avail.Add(a);
      events.emplace_back(a, false);
    }
    if (now_strong && !strong_avail.Contains(a)) {
      strong_avail.Add(a);
      events.emplace_back(a, true);
    }
  };

  while (!ready.empty() || !events.empty()) {
    while (!ready.empty()) {
      int fd_idx = ready.back();
      ready.pop_back();
      for (AttributeId a : fds_[fd_idx].rhs) add_to_closure(a);
    }
    if (!events.empty()) {
      auto [a, strong] = events.back();
      events.pop_back();
      if (a < num_attrs_) {
        const auto& list = strong ? strong_lists_[a] : weak_lists_[a];
        for (int fd_idx : list) {
          if (--unmet[fd_idx] == 0) ready.push_back(fd_idx);
        }
      }
    }
  }
  return closure;
}

AttributeSet ClosureEngine::PClosure(const AttributeSet& x) const {
  return Run(kP, x);
}

AttributeSet ClosureEngine::CClosure(const AttributeSet& x) const {
  return Run(kC, x);
}

}  // namespace sqlnf
