// The axiom systems of the paper and a saturation-based inference engine.
//
//   𝔉  (Table 1): R, A, S, U, D, T, NT        — p-/c-FDs + NOT NULL
//   𝔎  (Table 2): kA, kS, kW                  — p-/c-keys + NOT NULL
//   𝔉𝔎 (Table 3): kfW, kT, kNT                — interaction rules
//
// Theorem 1 states 𝔉 is sound and complete for FDs; Theorem 4 states
// 𝔉 ∪ 𝔎 ∪ 𝔉𝔎 is sound and complete for the combined class. The engine
// here saturates the (finite) constraint space over a schema by forward
// rule application, records a derivation step for every constraint it
// derives, and can print human-readable proofs.
//
// Saturation is exponential in |T| (the constraint space is
// 2·4^|T| FDs + 2^{|T|+1} keys); it exists as (a) an explanation tool
// and (b) the independent oracle against which the linear-time closure
// procedures are property-tested. Use reasoning/implication.h for
// production decisions.

#ifndef SQLNF_REASONING_AXIOMS_H_
#define SQLNF_REASONING_AXIOMS_H_

#include <map>
#include <string>
#include <vector>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// Identifies the inference rule used by a derivation step.
enum class RuleId {
  kPremise,              // member of Σ
  kReflexivity,          // R:  ⊢ X →s X
  kLAugmentation,        // A:  X → Y ⊢ XZ → Y
  kStrengthening,        // S:  X →s Y, X ⊆ T_S ⊢ X →w Y
  kUnion,                // U:  X → Y, X → Z ⊢ X → YZ
  kDecomposition,        // D:  X → YZ ⊢ X → Y
  kPseudoTransitivity,   // T:  X → Y, XY →w Z ⊢ X → Z
  kNullTransitivity,     // NT: X →s Y, XY →s Z, Y ⊆ T_S ⊢ X →s Z
  kKeyAugmentation,      // kA: (p/c)⟨X⟩ ⊢ (p/c)⟨XY⟩
  kKeyStrengthening,     // kS: p⟨X⟩, X ⊆ T_S ⊢ c⟨X⟩
  kKeyWeakening,         // kW: c⟨X⟩ ⊢ p⟨X⟩
  kKeyFdWeakening,       // kfW: (p/c)⟨X⟩ ⊢ X → Y
  kKeyTransitivity,      // kT: X → Y, c⟨XY⟩ ⊢ (p/c)⟨X⟩
  kKeyNullTransitivity,  // kNT: X →s Y, p⟨XY⟩, Y ⊆ T_S ⊢ p⟨X⟩
};

const char* RuleName(RuleId rule);

/// One node of a forward-chaining proof.
struct DerivationStep {
  Constraint conclusion;
  RuleId rule = RuleId::kPremise;
  std::vector<int> premises;  // indices of earlier steps
};

/// Caps for saturation, to keep the exponential engine usable in tests.
struct SaturationLimits {
  int max_attributes = 6;       // refuse larger schemas
  int max_constraints = 200000; // abort safety valve
};

/// Forward-chaining saturation of Σ under 𝔉 ∪ 𝔎 ∪ 𝔉𝔎 over (T, T_S).
class AxiomEngine {
 public:
  /// Saturates. Fails (OutOfRange) when the schema exceeds the limits.
  static Result<AxiomEngine> Saturate(const TableSchema& schema,
                                      const ConstraintSet& sigma,
                                      const SaturationLimits& limits = {});

  /// Constraint is in the syntactic closure Σ+.
  bool Derivable(const Constraint& c) const;
  bool Derivable(const FunctionalDependency& fd) const;
  bool Derivable(const KeyConstraint& key) const;

  /// All derived FDs / keys (Σ+ restricted to each kind).
  std::vector<FunctionalDependency> DerivedFds() const;
  std::vector<KeyConstraint> DerivedKeys() const;

  /// A linearized proof of `c` (premises before conclusions), rendered
  /// one step per line; NotFound when `c` is not derivable.
  Result<std::string> Explain(const Constraint& c) const;

  size_t num_steps() const { return steps_.size(); }

 private:
  AxiomEngine(TableSchema schema) : schema_(std::move(schema)) {}

  // Returns the step index; creates the step when new.
  int AddFd(const FunctionalDependency& fd, RuleId rule,
            std::vector<int> premises);
  int AddKey(const KeyConstraint& key, RuleId rule,
             std::vector<int> premises);
  Status Run(const ConstraintSet& sigma, const SaturationLimits& limits);

  TableSchema schema_;
  std::vector<DerivationStep> steps_;
  std::map<FunctionalDependency, int> fd_index_;
  std::map<KeyConstraint, int> key_index_;
  bool changed_ = false;
};

}  // namespace sqlnf

#endif  // SQLNF_REASONING_AXIOMS_H_
