// Attribute closures for possible and certain FDs (Definition 2,
// Algorithms 1 and 2, Theorem 3).
//
//   X*p = {A ∈ T | Σ ⊨ X →s A}   (p-closure)
//   X*c = {A ∈ T | Σ ⊨ X →w A}   (c-closure)
//
// Unlike relational attribute closures, neither operator is a closure
// operator: X*c need not contain X, and (X*p)*p = X*p can fail. What does
// hold (Lemma 1): monotonicity, X ∪ X*c ⊆ X*p, (X*c)*c ⊆ X*c, and
// (X*p)*c ⊆ X*p.
//
// Two implementations are provided:
//  * PClosureNaive / CClosureNaive — the repeat-until loops of
//    Algorithms 1/2, verbatim; quadratic, used as the testing oracle.
//  * ClosureEngine — the linear-time variant using the Beeri/Bernstein
//    counter technique: one unmet-attribute counter per FD and
//    per-attribute firing lists, specialized to the two availability
//    predicates each algorithm uses:
//      Alg.1 (p):  weak FD fires when LHS ⊆ C;
//                  strong FD fires when LHS ⊆ (C ∩ T_S) ∪ X.
//      Alg.2 (c):  C starts at X ∩ T_S; weak FD fires when LHS ⊆ C ∪ X;
//                  strong FD fires when LHS ⊆ C ∩ T_S.
//
// Keys in Σ must be converted to FDs first (ConstraintSet::FdProjection);
// the functions below accept FD-only views and assert on keys.

#ifndef SQLNF_REASONING_CLOSURE_H_
#define SQLNF_REASONING_CLOSURE_H_

#include <vector>

#include "sqlnf/constraints/constraint.h"

namespace sqlnf {

/// Algorithm 1, literal transcription. `sigma` may contain keys; they are
/// ignored (callers should pass Σ|FD for the combined class).
AttributeSet PClosureNaive(const ConstraintSet& sigma,
                           const AttributeSet& nfs, const AttributeSet& x);

/// Algorithm 2, literal transcription.
AttributeSet CClosureNaive(const ConstraintSet& sigma,
                           const AttributeSet& nfs, const AttributeSet& x);

/// Linear-time closure computation over a fixed (Σ|FD, T_S).
///
/// Construction indexes the FDs once; each Closure() call runs in
/// O(|Σ| + |T|) — linear in the total input size, matching Theorem 3.
/// The engine is reusable across many queries (normal-form checks issue
/// one closure per input FD).
class ClosureEngine {
 public:
  /// Indexes the FDs of `sigma` (keys, if any, are ignored — convert
  /// them with FdProjection first when reasoning about the combined
  /// class).
  ClosureEngine(const ConstraintSet& sigma, AttributeSet nfs);

  /// X*p (Algorithm 1 semantics).
  AttributeSet PClosure(const AttributeSet& x) const;

  /// X*c (Algorithm 2 semantics).
  AttributeSet CClosure(const AttributeSet& x) const;

 private:
  enum ClosureKind { kP, kC };
  AttributeSet Run(ClosureKind kind, const AttributeSet& x) const;

  struct FdEntry {
    AttributeSet lhs;
    AttributeSet rhs;
    bool strong;  // true for →s (p-FD), false for →w (c-FD)
  };

  AttributeSet nfs_;
  std::vector<FdEntry> fds_;
  // For each attribute id, indices of FDs whose LHS contains it, split
  // by arrow kind (weak-firing FDs listen to weak availability etc.).
  std::vector<std::vector<int>> weak_lists_;    // per-attribute, →w FDs
  std::vector<std::vector<int>> strong_lists_;  // per-attribute, →s FDs
  int num_attrs_ = 0;
};

}  // namespace sqlnf

#endif  // SQLNF_REASONING_CLOSURE_H_
