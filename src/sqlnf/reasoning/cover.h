// Covers: equivalent, smaller representations of a constraint set.
//
// Normal-form conditions are invariant under equivalent representations
// of Σ (paper, Section 5.1), so it is safe — and useful for reporting —
// to minimize Σ before analysis. We provide the standard notions lifted
// to the combined class: LHS-minimization of FDs, removal of implied
// constraints, and a canonical(-ish) cover combining both.

#ifndef SQLNF_REASONING_COVER_H_
#define SQLNF_REASONING_COVER_H_

#include "sqlnf/constraints/constraint.h"

namespace sqlnf {

/// Replaces each FD's LHS with a minimal subset that still implies the
/// FD under Σ (keeping Σ equivalent throughout). Deterministic: removal
/// candidates are tried in ascending attribute order.
ConstraintSet MinimizeLhs(const TableSchema& schema,
                          const ConstraintSet& sigma);

/// Shrinks each key's attribute set to a minimal subset that is still
/// implied by Σ, keeping equivalence.
ConstraintSet MinimizeKeys(const TableSchema& schema,
                           const ConstraintSet& sigma);

/// Drops constraints implied by the remaining ones (first-to-last scan).
ConstraintSet RemoveRedundant(const TableSchema& schema,
                              const ConstraintSet& sigma);

/// MinimizeLhs + MinimizeKeys + RemoveRedundant + deduplication. The
/// result is equivalent to `sigma` over (T, T_S).
ConstraintSet ReducedCover(const TableSchema& schema,
                           const ConstraintSet& sigma);

}  // namespace sqlnf

#endif  // SQLNF_REASONING_COVER_H_
