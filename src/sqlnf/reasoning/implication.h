// Implication for the combined class of p-FDs, c-FDs, p-keys, c-keys,
// and NOT NULL constraints (Theorems 2, 4, 5).
//
// The decision procedure follows the paper's two reductions
// (Definition 3 and the discussion around it):
//
//  FD query:   Σ ⊨ X →s Y  ⟺  Y ⊆ X*p w.r.t. Σ|FD
//              Σ ⊨ X →w Y  ⟺  Y ⊆ X*c w.r.t. Σ|FD
//  Key query:  Σ ⊨ p⟨X⟩  ⟺  Σ|key ⊨𝔎 c⟨X*p⟩  or  Σ|key ⊨𝔎 p⟨X(X*p ∩ T_S)⟩
//              Σ ⊨ c⟨X⟩  ⟺  Σ|key ⊨𝔎 c⟨X X*c⟩
//  where ⊨𝔎 is implication of keys by keys alone (axioms 𝔎, Table 2):
//              keys ⊨𝔎 p⟨X⟩ ⟺ ∃ (p/c)⟨Z⟩ ∈ keys with Z ⊆ X
//              keys ⊨𝔎 c⟨X⟩ ⟺ ∃ c⟨Z⟩ ∈ keys with Z ⊆ X,
//                               or ∃ p⟨Z⟩ ∈ keys with Z ⊆ X and Z ⊆ T_S
//
// All decisions run in time linear in the input (Theorem 5).

#ifndef SQLNF_REASONING_IMPLICATION_H_
#define SQLNF_REASONING_IMPLICATION_H_

#include <memory>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/reasoning/closure.h"

namespace sqlnf {

/// Decides key implication by keys alone under the 𝔎 axioms.
bool KeyImpliedByKeysAlone(const std::vector<KeyConstraint>& keys,
                           const AttributeSet& nfs,
                           const KeyConstraint& query);

/// Implication engine over a fixed schema (T, T_S) and Σ.
///
/// Builds the FD-projection Σ|FD and its linear-time closure engine once;
/// answers any number of implication queries.
class Implication {
 public:
  Implication(const TableSchema& schema, const ConstraintSet& sigma);

  /// X*p with respect to Σ|FD.
  AttributeSet PClosure(const AttributeSet& x) const {
    return engine_.PClosure(x);
  }
  /// X*c with respect to Σ|FD.
  AttributeSet CClosure(const AttributeSet& x) const {
    return engine_.CClosure(x);
  }

  bool Implies(const FunctionalDependency& fd) const;
  bool Implies(const KeyConstraint& key) const;
  bool Implies(const Constraint& c) const;

  const TableSchema& schema() const { return schema_; }
  const ConstraintSet& sigma() const { return sigma_; }

 private:
  TableSchema schema_;
  ConstraintSet sigma_;
  ConstraintSet fd_projection_;
  ClosureEngine engine_;
};

/// One-shot convenience wrappers (build an Implication internally).
bool Implies(const TableSchema& schema, const ConstraintSet& sigma,
             const FunctionalDependency& fd);
bool Implies(const TableSchema& schema, const ConstraintSet& sigma,
             const KeyConstraint& key);
bool Implies(const TableSchema& schema, const ConstraintSet& sigma,
             const Constraint& c);

/// Σ1 and Σ2 are equivalent (same instances, equivalently the same
/// syntactic closure Σ+) over (T, T_S).
bool EquivalentSigmas(const TableSchema& schema, const ConstraintSet& s1,
                      const ConstraintSet& s2);

}  // namespace sqlnf

#endif  // SQLNF_REASONING_IMPLICATION_H_
