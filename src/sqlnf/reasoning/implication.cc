#include "sqlnf/reasoning/implication.h"

namespace sqlnf {

bool KeyImpliedByKeysAlone(const std::vector<KeyConstraint>& keys,
                           const AttributeSet& nfs,
                           const KeyConstraint& query) {
  for (const KeyConstraint& k : keys) {
    if (!k.attrs.IsSubsetOf(query.attrs)) continue;
    if (query.mode == Mode::kPossible) {
      // kW + kA: any key (possible or certain) on a subset suffices.
      return true;
    }
    // Certain query: a certain key on a subset (kA), or a possible key
    // on a null-free subset (kS + kA).
    if (k.is_certain() || k.attrs.IsSubsetOf(nfs)) return true;
  }
  return false;
}

Implication::Implication(const TableSchema& schema,
                         const ConstraintSet& sigma)
    : schema_(schema),
      sigma_(sigma),
      fd_projection_(sigma.FdProjection(schema.all())),
      engine_(fd_projection_, schema.nfs()) {}

bool Implication::Implies(const FunctionalDependency& fd) const {
  if (fd.is_possible()) {
    return fd.rhs.IsSubsetOf(engine_.PClosure(fd.lhs));
  }
  return fd.rhs.IsSubsetOf(engine_.CClosure(fd.lhs));
}

bool Implication::Implies(const KeyConstraint& key) const {
  const AttributeSet& nfs = schema_.nfs();
  const std::vector<KeyConstraint>& keys = sigma_.keys();
  if (key.is_possible()) {
    // (i): Σ ⊨ p⟨X⟩ iff Σ|key ⊨ c⟨X*p⟩ or Σ|key ⊨ p⟨X(X*p ∩ T_S)⟩.
    AttributeSet xp = engine_.PClosure(key.attrs);
    if (KeyImpliedByKeysAlone(keys, nfs, KeyConstraint::Certain(xp))) {
      return true;
    }
    AttributeSet augmented = key.attrs.Union(xp.Intersect(nfs));
    return KeyImpliedByKeysAlone(keys, nfs,
                                 KeyConstraint::Possible(augmented));
  }
  // (ii): Σ ⊨ c⟨X⟩ iff Σ|key ⊨ c⟨X ∪ X*c⟩.
  AttributeSet xc = engine_.CClosure(key.attrs);
  return KeyImpliedByKeysAlone(
      keys, nfs, KeyConstraint::Certain(key.attrs.Union(xc)));
}

bool Implication::Implies(const Constraint& c) const {
  if (const auto* fd = std::get_if<FunctionalDependency>(&c)) {
    return Implies(*fd);
  }
  return Implies(std::get<KeyConstraint>(c));
}

bool Implies(const TableSchema& schema, const ConstraintSet& sigma,
             const FunctionalDependency& fd) {
  return Implication(schema, sigma).Implies(fd);
}

bool Implies(const TableSchema& schema, const ConstraintSet& sigma,
             const KeyConstraint& key) {
  return Implication(schema, sigma).Implies(key);
}

bool Implies(const TableSchema& schema, const ConstraintSet& sigma,
             const Constraint& c) {
  return Implication(schema, sigma).Implies(c);
}

bool EquivalentSigmas(const TableSchema& schema, const ConstraintSet& s1,
                      const ConstraintSet& s2) {
  Implication imp1(schema, s1);
  Implication imp2(schema, s2);
  for (const Constraint& c : s2.All()) {
    if (!imp1.Implies(c)) return false;
  }
  for (const Constraint& c : s1.All()) {
    if (!imp2.Implies(c)) return false;
  }
  return true;
}

}  // namespace sqlnf
