#include "sqlnf/reasoning/axioms.h"

#include <algorithm>

namespace sqlnf {

const char* RuleName(RuleId rule) {
  switch (rule) {
    case RuleId::kPremise:
      return "premise";
    case RuleId::kReflexivity:
      return "R (reflexivity)";
    case RuleId::kLAugmentation:
      return "A (L-augmentation)";
    case RuleId::kStrengthening:
      return "S (strengthening)";
    case RuleId::kUnion:
      return "U (union)";
    case RuleId::kDecomposition:
      return "D (decomposition)";
    case RuleId::kPseudoTransitivity:
      return "T (pseudo-transitivity)";
    case RuleId::kNullTransitivity:
      return "NT (null-transitivity)";
    case RuleId::kKeyAugmentation:
      return "kA (key-augmentation)";
    case RuleId::kKeyStrengthening:
      return "kS (key-strengthening)";
    case RuleId::kKeyWeakening:
      return "kW (key-weakening)";
    case RuleId::kKeyFdWeakening:
      return "kfW (key-FD-weakening)";
    case RuleId::kKeyTransitivity:
      return "kT (key-transitivity)";
    case RuleId::kKeyNullTransitivity:
      return "kNT (key-null-transitivity)";
  }
  return "?";
}

Result<AxiomEngine> AxiomEngine::Saturate(const TableSchema& schema,
                                          const ConstraintSet& sigma,
                                          const SaturationLimits& limits) {
  if (schema.num_attributes() > limits.max_attributes) {
    return Status::OutOfRange(
        "axiomatic saturation is exponential; schema has " +
        std::to_string(schema.num_attributes()) + " attributes, limit is " +
        std::to_string(limits.max_attributes) +
        " (use reasoning/implication.h for large schemas)");
  }
  AxiomEngine engine(schema);
  SQLNF_RETURN_NOT_OK(engine.Run(sigma, limits));
  return engine;
}

int AxiomEngine::AddFd(const FunctionalDependency& fd, RuleId rule,
                       std::vector<int> premises) {
  auto it = fd_index_.find(fd);
  if (it != fd_index_.end()) return it->second;
  int idx = static_cast<int>(steps_.size());
  steps_.push_back({Constraint(fd), rule, std::move(premises)});
  fd_index_.emplace(fd, idx);
  changed_ = true;
  return idx;
}

int AxiomEngine::AddKey(const KeyConstraint& key, RuleId rule,
                        std::vector<int> premises) {
  auto it = key_index_.find(key);
  if (it != key_index_.end()) return it->second;
  int idx = static_cast<int>(steps_.size());
  steps_.push_back({Constraint(key), rule, std::move(premises)});
  key_index_.emplace(key, idx);
  changed_ = true;
  return idx;
}

Status AxiomEngine::Run(const ConstraintSet& sigma,
                        const SaturationLimits& limits) {
  const int n = schema_.num_attributes();
  const AttributeSet nfs = schema_.nfs();
  const uint64_t full = AttributeSet::FullSet(n).bits();

  for (const auto& fd : sigma.fds()) AddFd(fd, RuleId::kPremise, {});
  for (const auto& key : sigma.keys()) AddKey(key, RuleId::kPremise, {});

  // R: ⊢ X →s X for every X ⊆ T.
  for (uint64_t x = 0;; x = (x - full) & full) {
    AttributeSet set = AttributeSet::FromBits(x);
    AddFd(FunctionalDependency::Possible(set, set), RuleId::kReflexivity,
          {});
    if (x == full) break;
  }

  do {
    changed_ = false;
    if (steps_.size() > static_cast<size_t>(limits.max_constraints)) {
      return Status::OutOfRange("axiom saturation exceeded " +
                                std::to_string(limits.max_constraints) +
                                " constraints");
    }
    // Snapshot the current frontier; new conclusions join next round.
    std::vector<std::pair<FunctionalDependency, int>> fds(fd_index_.begin(),
                                                          fd_index_.end());
    std::vector<std::pair<KeyConstraint, int>> keys(key_index_.begin(),
                                                    key_index_.end());

    for (const auto& [fd, idx] : fds) {
      // A: X → Y ⊢ XZ → Y, one attribute at a time (iterated application
      // reaches every Z).
      for (AttributeId a = 0; a < n; ++a) {
        if (fd.lhs.Contains(a)) continue;
        FunctionalDependency aug = fd;
        aug.lhs.Add(a);
        AddFd(aug, RuleId::kLAugmentation, {idx});
      }
      // S: X →s Y, X ⊆ T_S ⊢ X →w Y.
      if (fd.is_possible() && fd.lhs.IsSubsetOf(nfs)) {
        AddFd(FunctionalDependency::Certain(fd.lhs, fd.rhs),
              RuleId::kStrengthening, {idx});
      }
      // D: X → YZ ⊢ X → Y; singletons suffice (U rebuilds the rest).
      for (AttributeId a : fd.rhs) {
        FunctionalDependency dec = fd;
        dec.rhs = AttributeSet::Single(a);
        AddFd(dec, RuleId::kDecomposition, {idx});
      }
      // kfW needs a key premise; handled in the key loop below.
    }

    // Binary FD rules: U, T, NT.
    for (const auto& [f1, i1] : fds) {
      for (const auto& [f2, i2] : fds) {
        // U: X → Y, X → Z ⊢ X → YZ (same mode, same LHS).
        if (f1.mode == f2.mode && f1.lhs == f2.lhs) {
          AddFd({f1.lhs, f1.rhs.Union(f2.rhs), f1.mode}, RuleId::kUnion,
                {i1, i2});
        }
        // T: X → Y, XY →w Z ⊢ X → Z (second premise certain; first
        // premise and conclusion share their mode).
        if (f2.is_certain() && f2.lhs == f1.lhs.Union(f1.rhs)) {
          AddFd({f1.lhs, f2.rhs, f1.mode}, RuleId::kPseudoTransitivity,
                {i1, i2});
        }
        // NT: X →s Y, XY →s Z, Y ⊆ T_S ⊢ X →s Z.
        if (f1.is_possible() && f2.is_possible() &&
            f1.rhs.IsSubsetOf(nfs) && f2.lhs == f1.lhs.Union(f1.rhs)) {
          AddFd(FunctionalDependency::Possible(f1.lhs, f2.rhs),
                RuleId::kNullTransitivity, {i1, i2});
        }
      }
    }

    for (const auto& [key, idx] : keys) {
      // kA: (p/c)⟨X⟩ ⊢ (p/c)⟨XY⟩, one attribute at a time.
      for (AttributeId a = 0; a < n; ++a) {
        if (key.attrs.Contains(a)) continue;
        KeyConstraint aug = key;
        aug.attrs.Add(a);
        AddKey(aug, RuleId::kKeyAugmentation, {idx});
      }
      // kS: p⟨X⟩, X ⊆ T_S ⊢ c⟨X⟩.
      if (key.is_possible() && key.attrs.IsSubsetOf(nfs)) {
        AddKey(KeyConstraint::Certain(key.attrs), RuleId::kKeyStrengthening,
               {idx});
      }
      // kW: c⟨X⟩ ⊢ p⟨X⟩.
      if (key.is_certain()) {
        AddKey(KeyConstraint::Possible(key.attrs), RuleId::kKeyWeakening,
               {idx});
      }
      // kfW: (p/c)⟨X⟩ ⊢ X → Y for every Y (mode matches the key's).
      Mode mode = key.mode;
      for (uint64_t y = 0;; y = (y - full) & full) {
        AddFd({key.attrs, AttributeSet::FromBits(y), mode},
              RuleId::kKeyFdWeakening, {idx});
        if (y == full) break;
      }
    }

    // Interaction rules with both an FD and a key premise: kT, kNT.
    for (const auto& [fd, fi] : fds) {
      const AttributeSet xy = fd.lhs.Union(fd.rhs);
      for (const auto& [key, ki] : keys) {
        if (key.attrs == xy) {
          // kT: X → Y, c⟨XY⟩ ⊢ (p/c)⟨X⟩ (conclusion mode = FD mode).
          if (key.is_certain()) {
            AddKey({fd.lhs, fd.mode}, RuleId::kKeyTransitivity, {fi, ki});
          }
          // kNT: X →s Y, p⟨XY⟩, Y ⊆ T_S ⊢ p⟨X⟩.
          if (key.is_possible() && fd.is_possible() &&
              fd.rhs.IsSubsetOf(nfs)) {
            AddKey(KeyConstraint::Possible(fd.lhs),
                   RuleId::kKeyNullTransitivity, {fi, ki});
          }
        }
      }
    }
  } while (changed_);
  return Status::OK();
}

bool AxiomEngine::Derivable(const FunctionalDependency& fd) const {
  // FDs with an empty RHS hold in every instance; the calculus does not
  // bother deriving them (see header).
  if (fd.rhs.empty()) return true;
  return fd_index_.contains(fd);
}

bool AxiomEngine::Derivable(const KeyConstraint& key) const {
  return key_index_.contains(key);
}

bool AxiomEngine::Derivable(const Constraint& c) const {
  if (const auto* fd = std::get_if<FunctionalDependency>(&c)) {
    return Derivable(*fd);
  }
  return Derivable(std::get<KeyConstraint>(c));
}

std::vector<FunctionalDependency> AxiomEngine::DerivedFds() const {
  std::vector<FunctionalDependency> out;
  out.reserve(fd_index_.size());
  for (const auto& [fd, idx] : fd_index_) out.push_back(fd);
  return out;
}

std::vector<KeyConstraint> AxiomEngine::DerivedKeys() const {
  std::vector<KeyConstraint> out;
  out.reserve(key_index_.size());
  for (const auto& [key, idx] : key_index_) out.push_back(key);
  return out;
}

Result<std::string> AxiomEngine::Explain(const Constraint& c) const {
  int root;
  if (const auto* fd = std::get_if<FunctionalDependency>(&c)) {
    auto it = fd_index_.find(*fd);
    if (it == fd_index_.end()) {
      return Status::NotFound("constraint is not derivable: " +
                              ConstraintToString(c, schema_));
    }
    root = it->second;
  } else {
    auto it = key_index_.find(std::get<KeyConstraint>(c));
    if (it == key_index_.end()) {
      return Status::NotFound("constraint is not derivable: " +
                              ConstraintToString(c, schema_));
    }
    root = it->second;
  }

  // Collect the proof DAG below `root`, then print in step order.
  std::vector<int> needed;
  std::vector<bool> seen(steps_.size(), false);
  std::vector<int> stack = {root};
  while (!stack.empty()) {
    int idx = stack.back();
    stack.pop_back();
    if (seen[idx]) continue;
    seen[idx] = true;
    needed.push_back(idx);
    for (int p : steps_[idx].premises) stack.push_back(p);
  }
  std::sort(needed.begin(), needed.end());

  std::string out;
  std::map<int, int> renumber;
  for (size_t line = 0; line < needed.size(); ++line) {
    renumber[needed[line]] = static_cast<int>(line) + 1;
  }
  for (int idx : needed) {
    const DerivationStep& step = steps_[idx];
    out += "(" + std::to_string(renumber[idx]) + ") " +
           ConstraintToString(step.conclusion, schema_) + "   [" +
           RuleName(step.rule);
    for (size_t i = 0; i < step.premises.size(); ++i) {
      out += i == 0 ? ": " : ", ";
      out += std::to_string(renumber[step.premises[i]]);
    }
    out += "]\n";
  }
  return out;
}

}  // namespace sqlnf
