#include "sqlnf/reasoning/cover.h"

#include "sqlnf/reasoning/implication.h"

namespace sqlnf {

ConstraintSet MinimizeLhs(const TableSchema& schema,
                          const ConstraintSet& sigma) {
  ConstraintSet out = sigma;
  for (auto& fd : *out.mutable_fds()) {
    // Shrinking an LHS strengthens the FD, so the result still implies
    // the original (by L-augmentation); checking the shrunk FD against
    // the ORIGINAL Σ keeps the set equivalent.
    for (AttributeId a : fd.lhs) {
      FunctionalDependency candidate = fd;
      candidate.lhs.Remove(a);
      if (Implies(schema, sigma, candidate)) {
        fd.lhs = candidate.lhs;
      }
    }
  }
  return out;
}

ConstraintSet MinimizeKeys(const TableSchema& schema,
                           const ConstraintSet& sigma) {
  ConstraintSet out = sigma;
  for (auto& key : *out.mutable_keys()) {
    for (AttributeId a : key.attrs) {
      KeyConstraint candidate = key;
      candidate.attrs.Remove(a);
      if (Implies(schema, sigma, candidate)) {
        key.attrs = candidate.attrs;
      }
    }
  }
  return out;
}

ConstraintSet RemoveRedundant(const TableSchema& schema,
                              const ConstraintSet& sigma) {
  ConstraintSet kept = sigma;
  // FDs: try dropping each in turn against the current remainder.
  for (size_t i = 0; i < kept.fds().size();) {
    ConstraintSet without = kept;
    without.mutable_fds()->erase(without.mutable_fds()->begin() + i);
    if (Implies(schema, without, kept.fds()[i])) {
      kept = without;
    } else {
      ++i;
    }
  }
  for (size_t i = 0; i < kept.keys().size();) {
    ConstraintSet without = kept;
    without.mutable_keys()->erase(without.mutable_keys()->begin() + i);
    if (Implies(schema, without, kept.keys()[i])) {
      kept = without;
    } else {
      ++i;
    }
  }
  return kept;
}

ConstraintSet ReducedCover(const TableSchema& schema,
                           const ConstraintSet& sigma) {
  ConstraintSet out = MinimizeLhs(schema, sigma);
  out = MinimizeKeys(schema, out);
  // Deduplicate before redundancy removal to keep the scan cheap.
  ConstraintSet dedup;
  for (const auto& fd : out.fds()) dedup.AddUniqueFd(fd);
  for (const auto& key : out.keys()) dedup.AddUniqueKey(key);
  return RemoveRedundant(schema, dedup);
}

}  // namespace sqlnf
