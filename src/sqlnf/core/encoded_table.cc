#include "sqlnf/core/encoded_table.h"

#include <cassert>

namespace sqlnf {

EncodedTable::EncodedTable(const Table& table)
    : EncodedTable(table, AttributeSet::FullSet(table.num_columns())) {}

EncodedTable::EncodedTable(const Table& table, const AttributeSet& columns)
    : num_rows_(table.num_rows()),
      encoded_(columns),
      columns_(table.num_columns()) {
  for (AttributeId col : encoded_) {
    Column& c = columns_[col];
    c.codes.resize(num_rows_);
    for (int row = 0; row < num_rows_; ++row) {
      c.codes[row] = Encode(&c, table.row(row)[col]);
    }
  }
}

EncodedTable::EncodedTable(int num_columns)
    : encoded_(AttributeSet::FullSet(num_columns)), columns_(num_columns) {}

uint32_t EncodedTable::Encode(Column* col, const Value& value) {
  if (value.is_null()) {
    ++col->null_count;
    return kNullCode;
  }
  auto [it, inserted] =
      col->dict.emplace(value, static_cast<uint32_t>(col->values.size()));
  if (inserted) col->values.push_back(value);
  return it->second;
}

uint32_t EncodedTable::LookupCode(AttributeId col, const Value& value) const {
  if (value.is_null()) return kNullCode;
  const Column& c = columns_[col];
  auto it = c.dict.find(value);
  return it == c.dict.end() ? kMissingCode : it->second;
}

const Value& EncodedTable::DecodeCode(AttributeId col, uint32_t code) const {
  static const Value kNull = Value::Null();
  if (code == kNullCode) return kNull;
  return columns_[col].values[code];
}

AttributeSet EncodedTable::NullFreeColumns() const {
  AttributeSet out;
  for (AttributeId col : encoded_) {
    if (columns_[col].null_count == 0) out.Add(col);
  }
  return out;
}

void EncodedTable::AppendRow(const Tuple& row) {
  assert(row.size() == num_columns());
  for (AttributeId col : encoded_) {
    Column& c = columns_[col];
    c.codes.push_back(Encode(&c, row[col]));
  }
  ++num_rows_;
}

void EncodedTable::UpdateCell(int row, AttributeId col, const Value& value) {
  Column& c = columns_[col];
  if (c.codes[row] == kNullCode) --c.null_count;
  c.codes[row] = Encode(&c, value);
  // Encode counted a fresh ⊥; a non-null value leaves the count alone.
}

void EncodedTable::EraseRows(const std::vector<int>& rows) {
  if (rows.empty()) return;
  for (AttributeId col : encoded_) {
    Column& c = columns_[col];
    size_t next_erase = 0;
    int write = 0;
    for (int read = 0; read < num_rows_; ++read) {
      if (next_erase < rows.size() && rows[next_erase] == read) {
        if (c.codes[read] == kNullCode) --c.null_count;
        ++next_erase;
        continue;
      }
      c.codes[write++] = c.codes[read];
    }
    c.codes.resize(write);
  }
  num_rows_ -= static_cast<int>(rows.size());
}

Table EncodedTable::Decode(const TableSchema& schema) const {
  assert(schema.num_attributes() == num_columns());
  assert(encoded_ == AttributeSet::FullSet(num_columns()));
  Table out(schema);
  for (int row = 0; row < num_rows_; ++row) {
    std::vector<Value> values;
    values.reserve(num_columns());
    for (AttributeId col = 0; col < num_columns(); ++col) {
      values.push_back(DecodeCode(col, columns_[col].codes[row]));
    }
    Status st = out.AddRow(Tuple(std::move(values)));
    assert(st.ok());
    (void)st;
  }
  return out;
}

bool EncodedTable::EquivalentTo(const EncodedTable& other) const {
  if (num_rows_ != other.num_rows_ ||
      num_columns() != other.num_columns() || encoded_ != other.encoded_) {
    return false;
  }
  for (AttributeId col : encoded_) {
    const std::vector<uint32_t>& a = columns_[col].codes;
    const std::vector<uint32_t>& b = other.columns_[col].codes;
    std::unordered_map<uint32_t, uint32_t> fwd, rev;
    for (int row = 0; row < num_rows_; ++row) {
      if ((a[row] == kNullCode) != (b[row] == kNullCode)) return false;
      if (a[row] == kNullCode) continue;
      auto [fit, finserted] = fwd.emplace(a[row], b[row]);
      if (!finserted && fit->second != b[row]) return false;
      if (finserted &&
          !(DecodeCode(col, a[row]) == other.DecodeCode(col, b[row]))) {
        return false;
      }
      auto [rit, rinserted] = rev.emplace(b[row], a[row]);
      if (!rinserted && rit->second != a[row]) return false;
    }
  }
  return true;
}

}  // namespace sqlnf
