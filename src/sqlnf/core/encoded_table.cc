#include "sqlnf/core/encoded_table.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

#include "sqlnf/core/code_hash_index.h"
#include "sqlnf/util/parallel.h"

namespace sqlnf {

EncodedTable::EncodedTable(const Table& table)
    : EncodedTable(table, AttributeSet::FullSet(table.num_columns())) {}

EncodedTable::EncodedTable(const Table& table, const AttributeSet& columns)
    : num_rows_(table.num_rows()), encoded_(columns) {
  columns_.reserve(table.num_columns());
  for (int col = 0; col < table.num_columns(); ++col) {
    columns_.push_back(std::make_shared<Column>());
  }
  for (AttributeId col : encoded_) {
    Column& c = *columns_[col];
    c.codes.resize(num_rows_);
    for (int row = 0; row < num_rows_; ++row) {
      c.codes[row] = EncodeUnordered(&c, table.row(row)[col]);
    }
    RebuildOrder(&c);  // one O(d log d) sort beats d ordered insertions
  }
}

EncodedTable::EncodedTable(int num_columns)
    : encoded_(AttributeSet::FullSet(num_columns)) {
  columns_.reserve(num_columns);
  for (int col = 0; col < num_columns; ++col) {
    columns_.push_back(std::make_shared<Column>());
  }
}

EncodedTable::Column& EncodedTable::Detach(AttributeId col) {
  std::shared_ptr<Column>& p = columns_[col];
  // use_count > 1 means a snapshot (or sibling copy) still references
  // this version; clone before writing so that reader stays bit-stable.
  // Only the single writer thread ever detaches, and snapshot refcount
  // drops can at worst leave a stale >1 reading (a harmless extra
  // clone), never a stale ==1.
  if (p.use_count() > 1) p = std::make_shared<Column>(*p);
  return *p;
}

uint32_t EncodedTable::Encode(Column* col, const Value& value) {
  const size_t before = col->values.size();
  const uint32_t code = EncodeUnordered(col, value);
  if (col->values.size() != before) InsertOrdered(col, code);
  return code;
}

uint32_t EncodedTable::EncodeUnordered(Column* col, const Value& value) {
  if (value.is_null()) {
    ++col->null_count;
    return kNullCode;
  }
  auto [it, inserted] =
      col->dict.emplace(value, static_cast<uint32_t>(col->values.size()));
  if (inserted) col->values.push_back(value);
  return it->second;
}

void EncodedTable::InsertOrdered(Column* col, uint32_t code) {
  const Value& v = col->values[code];
  const auto it = std::lower_bound(
      col->sorted.begin(), col->sorted.end(), v,
      [col](uint32_t c, const Value& x) { return col->values[c] < x; });
  const size_t at = static_cast<size_t>(it - col->sorted.begin());
  col->sorted.insert(it, code);
  // The rank array grows by one slot; the sentinel moves up to stay at
  // index values.size(), and every code displaced by the insertion
  // shifts one rank. Values arriving in ascending order (at == code)
  // touch only the new tail slot.
  col->rank.push_back(kNoRank);
  for (size_t r = at; r < col->sorted.size(); ++r) {
    col->rank[col->sorted[r]] = static_cast<uint32_t>(r);
  }
  col->rank[col->values.size()] = kNoRank;
  col->ordered = col->ordered && at == code;
}

void EncodedTable::RebuildOrder(Column* col) {
  const size_t d = col->values.size();
  col->sorted.resize(d);
  std::iota(col->sorted.begin(), col->sorted.end(), 0u);
  std::sort(col->sorted.begin(), col->sorted.end(),
            [col](uint32_t a, uint32_t b) {
              return col->values[a] < col->values[b];
            });
  col->rank.assign(d + 1, kNoRank);
  col->ordered = true;
  for (size_t r = 0; r < d; ++r) {
    col->rank[col->sorted[r]] = static_cast<uint32_t>(r);
    col->ordered = col->ordered && col->sorted[r] == r;
  }
}

void EncodedTable::CopyDictionary(const Column& src, Column* dst) {
  dst->values = src.values;
  dst->dict = src.dict;
  dst->sorted = src.sorted;
  dst->rank = src.rank;
  dst->ordered = src.ordered;
}

uint32_t EncodedTable::LookupCode(AttributeId col, const Value& value) const {
  if (value.is_null()) return kNullCode;
  const Column& c = *columns_[col];
  auto it = c.dict.find(value);
  return it == c.dict.end() ? kMissingCode : it->second;
}

uint32_t EncodedTable::LowerBoundRank(AttributeId col, const Value& v) const {
  const Column& c = *columns_[col];
  const auto it = std::lower_bound(
      c.sorted.begin(), c.sorted.end(), v,
      [&c](uint32_t code, const Value& x) { return c.values[code] < x; });
  return static_cast<uint32_t>(it - c.sorted.begin());
}

uint32_t EncodedTable::UpperBoundRank(AttributeId col, const Value& v) const {
  const Column& c = *columns_[col];
  const auto it = std::upper_bound(
      c.sorted.begin(), c.sorted.end(), v,
      [&c](const Value& x, uint32_t code) { return x < c.values[code]; });
  return static_cast<uint32_t>(it - c.sorted.begin());
}

std::vector<int> EncodedTable::CompactDictionaries() {
  std::vector<int> retired(columns_.size(), 0);
  for (AttributeId col : encoded_) {
    const Column& before = *columns_[col];
    const size_t d = before.values.size();
    // Liveness scan on the shared column — no detach needed yet.
    std::vector<char> live(d, 0);
    for (uint32_t code : before.codes) {
      if (code != kNullCode) live[code] = 1;
    }
    size_t live_count = 0;
    for (char l : live) live_count += static_cast<size_t>(l);
    if (live_count == d && before.ordered) continue;  // already canonical
    retired[col] = static_cast<int>(d - live_count);

    // Canonical target: live values in ascending value order get codes
    // 0..live_count-1, so code order IS value order (rank identity).
    // `before.sorted` already lists codes in that order; walking it and
    // skipping dead codes yields the old→new remap directly.
    std::vector<uint32_t> remap(d, kMissingCode);
    Column next;
    next.values.reserve(live_count);
    next.dict.reserve(live_count);
    for (uint32_t old_code : before.sorted) {
      if (!live[old_code]) continue;
      remap[old_code] = static_cast<uint32_t>(next.values.size());
      next.dict.emplace(before.values[old_code],
                        static_cast<uint32_t>(next.values.size()));
      next.values.push_back(before.values[old_code]);
    }
    next.sorted.resize(live_count);
    std::iota(next.sorted.begin(), next.sorted.end(), 0u);
    next.rank.assign(live_count + 1, kNoRank);
    for (size_t r = 0; r < live_count; ++r) {
      next.rank[r] = static_cast<uint32_t>(r);
    }
    next.ordered = true;
    next.null_count = before.null_count;
    next.codes.resize(before.codes.size());
    for (size_t row = 0; row < before.codes.size(); ++row) {
      const uint32_t code = before.codes[row];
      next.codes[row] = code == kNullCode ? kNullCode : remap[code];
    }
    // Publish the rebuilt column as a fresh version; snapshots sharing
    // the old shared_ptr keep their pre-compaction codes bit-stable.
    columns_[col] = std::make_shared<Column>(std::move(next));
  }
  return retired;
}

Status EncodedTable::CheckDictionaryOrder() const {
  for (AttributeId col : encoded_) {
    const Column& c = *columns_[col];
    const size_t d = c.values.size();
    if (c.sorted.size() != d) {
      return Status::Internal("order index: sorted size != dictionary");
    }
    if (c.rank.size() != d + 1 || c.rank[d] != kNoRank) {
      return Status::Internal("order index: rank sentinel missing");
    }
    std::vector<char> seen(d, 0);
    bool identity = true;
    for (size_t r = 0; r < d; ++r) {
      const uint32_t code = c.sorted[r];
      if (code >= d || seen[code]) {
        return Status::Internal("order index: sorted not a permutation");
      }
      seen[code] = 1;
      if (c.rank[code] != r) {
        return Status::Internal("order index: rank is not sorted's inverse");
      }
      if (r > 0 && !(c.values[c.sorted[r - 1]] < c.values[code])) {
        return Status::Internal("order index: values not strictly ascending");
      }
      identity = identity && code == r;
    }
    if (c.ordered != identity) {
      return Status::Internal("order index: ordered flag stale");
    }
  }
  return Status::OK();
}

const Value& EncodedTable::DecodeCode(AttributeId col, uint32_t code) const {
  static const Value kNull = Value::Null();
  if (code == kNullCode) return kNull;
  return columns_[col]->values[code];
}

AttributeSet EncodedTable::NullFreeColumns() const {
  AttributeSet out;
  for (AttributeId col : encoded_) {
    if (columns_[col]->null_count == 0) out.Add(col);
  }
  return out;
}

std::vector<int> EncodedTable::DictionarySizes() const {
  std::vector<int> sizes(columns_.size(), 0);
  for (AttributeId col : encoded_) sizes[col] = dictionary_size(col);
  return sizes;
}

void EncodedTable::TrimDictionaries(const std::vector<int>& sizes) {
  assert(sizes.size() == columns_.size());
  for (AttributeId col : encoded_) {
    if (dictionary_size(col) <= sizes[col]) continue;
    Column& c = Detach(col);
    while (static_cast<int>(c.values.size()) > sizes[col]) {
      c.dict.erase(c.values.back());
      c.values.pop_back();
    }
    RebuildOrder(&c);
  }
}

void EncodedTable::AppendRow(const Tuple& row) {
  assert(row.size() == num_columns());
  for (AttributeId col : encoded_) {
    Column& c = Detach(col);
    c.codes.push_back(Encode(&c, row[col]));
  }
  ++num_rows_;
}

void EncodedTable::UpdateCell(int row, AttributeId col, const Value& value) {
  Column& c = Detach(col);
  if (c.codes[row] == kNullCode) --c.null_count;
  c.codes[row] = Encode(&c, value);
  // Encode counted a fresh ⊥; a non-null value leaves the count alone.
}

void EncodedTable::EraseRows(const std::vector<int>& rows) {
  if (rows.empty()) return;
  for (AttributeId col : encoded_) {
    Column& c = Detach(col);
    size_t next_erase = 0;
    int write = 0;
    for (int read = 0; read < num_rows_; ++read) {
      if (next_erase < rows.size() && rows[next_erase] == read) {
        if (c.codes[read] == kNullCode) --c.null_count;
        ++next_erase;
        continue;
      }
      c.codes[write++] = c.codes[read];
    }
    c.codes.resize(write);
  }
  num_rows_ -= static_cast<int>(rows.size());
}

void EncodedTable::UneraseRows(const std::vector<int>& rows,
                               const std::vector<Tuple>& tuples) {
  if (rows.empty()) return;
  assert(rows.size() == tuples.size());
  const int restored = num_rows_ + static_cast<int>(rows.size());
  for (AttributeId col : encoded_) {
    Column& c = Detach(col);
    std::vector<uint32_t> codes(restored);
    size_t next_restore = 0;
    int read = 0;
    for (int pos = 0; pos < restored; ++pos) {
      if (next_restore < rows.size() && rows[next_restore] == pos) {
        codes[pos] = Encode(&c, tuples[next_restore][col]);
        ++next_restore;
      } else {
        codes[pos] = c.codes[read++];
      }
    }
    c.codes = std::move(codes);
  }
  num_rows_ = restored;
}

Table EncodedTable::Decode(const TableSchema& schema) const {
  assert(schema.num_attributes() == num_columns());
  assert(encoded_ == AttributeSet::FullSet(num_columns()));
  Table out(schema);
  for (int row = 0; row < num_rows_; ++row) {
    std::vector<Value> values;
    values.reserve(num_columns());
    for (AttributeId col = 0; col < num_columns(); ++col) {
      values.push_back(DecodeCode(col, columns_[col]->codes[row]));
    }
    Status st = out.AddRow(Tuple(std::move(values)));
    assert(st.ok());
    (void)st;
  }
  return out;
}

EncodedTable EncodedTable::GatherRows(const std::vector<int>& rows,
                                      ThreadPool* pool) const {
  EncodedTable out(num_columns());
  out.encoded_ = encoded_;
  out.num_rows_ = static_cast<int>(rows.size());
  std::vector<AttributeId> cols;
  cols.reserve(encoded_.size());
  for (AttributeId col : encoded_) cols.push_back(col);
  auto gather_one = [&](AttributeId col) {
    const Column& src = *columns_[col];
    Column& dst = *out.columns_[col];
    CopyDictionary(src, &dst);
    dst.codes.reserve(rows.size());
    for (int row : rows) {
      const uint32_t code = src.codes[row];
      if (code == kNullCode) ++dst.null_count;
      dst.codes.push_back(code);
    }
  };
  if (pool != nullptr && cols.size() > 1) {
    pool->RunTasks(static_cast<int>(cols.size()),
                   [&](int j) { gather_one(cols[j]); });
  } else {
    for (AttributeId col : cols) gather_one(col);
  }
  return out;
}

EncodedTable EncodedTable::GatherColumns(const std::vector<AttributeId>& cols,
                                         ThreadPool* pool) const {
  EncodedTable out(static_cast<int>(cols.size()));
  out.num_rows_ = num_rows_;
  auto copy_one = [&](size_t j) {
    assert(encoded_.Contains(cols[j]));
    out.columns_[j] = columns_[cols[j]];  // shared copy-on-write
  };
  if (pool != nullptr && cols.size() > 1) {
    pool->RunTasks(static_cast<int>(cols.size()),
                   [&](int j) { copy_one(static_cast<size_t>(j)); });
  } else {
    for (size_t j = 0; j < cols.size(); ++j) copy_one(j);
  }
  return out;
}

EncodedTable EncodedTable::AllocateTarget(
    const std::vector<std::pair<const EncodedTable*, AttributeId>>& sources,
    int num_rows) {
  EncodedTable out(static_cast<int>(sources.size()));
  out.num_rows_ = num_rows;
  for (size_t j = 0; j < sources.size(); ++j) {
    const auto& [src, col] = sources[j];
    assert(src->encoded_.Contains(col));
    Column& dst = *out.columns_[j];
    CopyDictionary(*src->columns_[col], &dst);
    dst.codes.resize(num_rows);
  }
  return out;
}

void EncodedTable::RecountNulls(ThreadPool* pool) {
  auto recount_one = [&](AttributeId col) {
    Column& c = Detach(col);
    int nulls = 0;
    for (uint32_t code : c.codes) {
      if (code == kNullCode) ++nulls;
    }
    c.null_count = nulls;
  };
  std::vector<AttributeId> cols;
  cols.reserve(encoded_.size());
  for (AttributeId col : encoded_) cols.push_back(col);
  if (pool != nullptr && cols.size() > 1) {
    pool->RunTasks(static_cast<int>(cols.size()),
                   [&](int j) { recount_one(cols[j]); });
  } else {
    for (AttributeId col : cols) recount_one(col);
  }
}

EncodedTable EncodedTable::Concat(const EncodedTable& left,
                                  const EncodedTable& right) {
  assert(left.num_rows_ == right.num_rows_);
  assert(left.encoded_ == AttributeSet::FullSet(left.num_columns()));
  assert(right.encoded_ == AttributeSet::FullSet(right.num_columns()));
  EncodedTable out(left.num_columns() + right.num_columns());
  out.num_rows_ = left.num_rows_;
  for (int j = 0; j < left.num_columns(); ++j) {
    out.columns_[j] = left.columns_[j];  // shared copy-on-write
  }
  for (int j = 0; j < right.num_columns(); ++j) {
    out.columns_[left.num_columns() + j] = right.columns_[j];
  }
  return out;
}

std::vector<int> EncodedTable::DistinctRows(ThreadPool* pool) const {
  std::vector<const std::vector<uint32_t>*> cols;
  cols.reserve(encoded_.size());
  for (AttributeId col : encoded_) cols.push_back(&columns_[col]->codes);

  // CSR hash index over all row codes; a row is a first occurrence iff
  // the bucket walk (ascending) reaches the row itself before any equal
  // row. Duplicates stop at their group's first row, so the walk is
  // O(1) for them; only hash collisions scan further.
  const CodeHashIndex index(cols, num_rows_, pool);
  auto is_first = [&](int row) {
    const CodeHashIndex::Range bucket = index.Bucket(index.row_hash(row));
    for (const int* p = bucket.begin; p != bucket.end; ++p) {
      const int prior = *p;
      if (prior == row) return true;
      bool same = true;
      for (const std::vector<uint32_t>* codes : cols) {
        if ((*codes)[row] != (*codes)[prior]) {
          same = false;
          break;
        }
      }
      if (same) return false;
    }
    return true;
  };

  std::vector<int> out;
  ParallelEmit(
      pool, 0, num_rows_,
      [&](int64_t b, int64_t e) {
        int64_t n = 0;
        for (int64_t row = b; row < e; ++row) {
          if (is_first(static_cast<int>(row))) ++n;
        }
        return n;
      },
      [&](int64_t total) { out.resize(total); },
      [&](int64_t b, int64_t e, int64_t offset) {
        for (int64_t row = b; row < e; ++row) {
          if (is_first(static_cast<int>(row))) {
            out[offset++] = static_cast<int>(row);
          }
        }
      });
  return out;
}

std::vector<uint32_t> EncodedTable::TranslationTo(
    AttributeId col, const EncodedTable& other, AttributeId other_col) const {
  const Column& c = *columns_[col];
  std::vector<uint32_t> map(c.values.size());
  for (size_t code = 0; code < c.values.size(); ++code) {
    map[code] = other.LookupCode(other_col, c.values[code]);
  }
  return map;
}

bool EncodedTable::EquivalentTo(const EncodedTable& other) const {
  if (num_rows_ != other.num_rows_ ||
      num_columns() != other.num_columns() || encoded_ != other.encoded_) {
    return false;
  }
  for (AttributeId col : encoded_) {
    const std::vector<uint32_t>& a = columns_[col]->codes;
    const std::vector<uint32_t>& b = other.columns_[col]->codes;
    std::unordered_map<uint32_t, uint32_t> fwd, rev;
    for (int row = 0; row < num_rows_; ++row) {
      if ((a[row] == kNullCode) != (b[row] == kNullCode)) return false;
      if (a[row] == kNullCode) continue;
      auto [fit, finserted] = fwd.emplace(a[row], b[row]);
      if (!finserted && fit->second != b[row]) return false;
      if (finserted &&
          !(DecodeCode(col, a[row]) == other.DecodeCode(col, b[row]))) {
        return false;
      }
      auto [rit, rinserted] = rev.emplace(b[row], a[row]);
      if (!rinserted && rit->second != a[row]) return false;
    }
  }
  return true;
}

bool EncodedTable::BitIdentical(const EncodedTable& other) const {
  if (num_rows_ != other.num_rows_ ||
      num_columns() != other.num_columns() || encoded_ != other.encoded_) {
    return false;
  }
  for (AttributeId col : encoded_) {
    const Column& a = *columns_[col];
    const Column& b = *other.columns_[col];
    if (a.codes != b.codes || a.null_count != b.null_count ||
        a.values.size() != b.values.size()) {
      return false;
    }
    for (size_t code = 0; code < a.values.size(); ++code) {
      if (!(a.values[code] == b.values[code])) return false;
    }
  }
  return true;
}

}  // namespace sqlnf
