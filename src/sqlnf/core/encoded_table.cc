#include "sqlnf/core/encoded_table.h"

#include <cassert>
#include <utility>

#include "sqlnf/core/code_hash_index.h"
#include "sqlnf/util/parallel.h"

namespace sqlnf {

EncodedTable::EncodedTable(const Table& table)
    : EncodedTable(table, AttributeSet::FullSet(table.num_columns())) {}

EncodedTable::EncodedTable(const Table& table, const AttributeSet& columns)
    : num_rows_(table.num_rows()), encoded_(columns) {
  columns_.reserve(table.num_columns());
  for (int col = 0; col < table.num_columns(); ++col) {
    columns_.push_back(std::make_shared<Column>());
  }
  for (AttributeId col : encoded_) {
    Column& c = *columns_[col];
    c.codes.resize(num_rows_);
    for (int row = 0; row < num_rows_; ++row) {
      c.codes[row] = Encode(&c, table.row(row)[col]);
    }
  }
}

EncodedTable::EncodedTable(int num_columns)
    : encoded_(AttributeSet::FullSet(num_columns)) {
  columns_.reserve(num_columns);
  for (int col = 0; col < num_columns; ++col) {
    columns_.push_back(std::make_shared<Column>());
  }
}

EncodedTable::Column& EncodedTable::Detach(AttributeId col) {
  std::shared_ptr<Column>& p = columns_[col];
  // use_count > 1 means a snapshot (or sibling copy) still references
  // this version; clone before writing so that reader stays bit-stable.
  // Only the single writer thread ever detaches, and snapshot refcount
  // drops can at worst leave a stale >1 reading (a harmless extra
  // clone), never a stale ==1.
  if (p.use_count() > 1) p = std::make_shared<Column>(*p);
  return *p;
}

uint32_t EncodedTable::Encode(Column* col, const Value& value) {
  if (value.is_null()) {
    ++col->null_count;
    return kNullCode;
  }
  auto [it, inserted] =
      col->dict.emplace(value, static_cast<uint32_t>(col->values.size()));
  if (inserted) col->values.push_back(value);
  return it->second;
}

uint32_t EncodedTable::LookupCode(AttributeId col, const Value& value) const {
  if (value.is_null()) return kNullCode;
  const Column& c = *columns_[col];
  auto it = c.dict.find(value);
  return it == c.dict.end() ? kMissingCode : it->second;
}

const Value& EncodedTable::DecodeCode(AttributeId col, uint32_t code) const {
  static const Value kNull = Value::Null();
  if (code == kNullCode) return kNull;
  return columns_[col]->values[code];
}

AttributeSet EncodedTable::NullFreeColumns() const {
  AttributeSet out;
  for (AttributeId col : encoded_) {
    if (columns_[col]->null_count == 0) out.Add(col);
  }
  return out;
}

std::vector<int> EncodedTable::DictionarySizes() const {
  std::vector<int> sizes(columns_.size(), 0);
  for (AttributeId col : encoded_) sizes[col] = dictionary_size(col);
  return sizes;
}

void EncodedTable::TrimDictionaries(const std::vector<int>& sizes) {
  assert(sizes.size() == columns_.size());
  for (AttributeId col : encoded_) {
    if (dictionary_size(col) <= sizes[col]) continue;
    Column& c = Detach(col);
    while (static_cast<int>(c.values.size()) > sizes[col]) {
      c.dict.erase(c.values.back());
      c.values.pop_back();
    }
  }
}

void EncodedTable::AppendRow(const Tuple& row) {
  assert(row.size() == num_columns());
  for (AttributeId col : encoded_) {
    Column& c = Detach(col);
    c.codes.push_back(Encode(&c, row[col]));
  }
  ++num_rows_;
}

void EncodedTable::UpdateCell(int row, AttributeId col, const Value& value) {
  Column& c = Detach(col);
  if (c.codes[row] == kNullCode) --c.null_count;
  c.codes[row] = Encode(&c, value);
  // Encode counted a fresh ⊥; a non-null value leaves the count alone.
}

void EncodedTable::EraseRows(const std::vector<int>& rows) {
  if (rows.empty()) return;
  for (AttributeId col : encoded_) {
    Column& c = Detach(col);
    size_t next_erase = 0;
    int write = 0;
    for (int read = 0; read < num_rows_; ++read) {
      if (next_erase < rows.size() && rows[next_erase] == read) {
        if (c.codes[read] == kNullCode) --c.null_count;
        ++next_erase;
        continue;
      }
      c.codes[write++] = c.codes[read];
    }
    c.codes.resize(write);
  }
  num_rows_ -= static_cast<int>(rows.size());
}

void EncodedTable::UneraseRows(const std::vector<int>& rows,
                               const std::vector<Tuple>& tuples) {
  if (rows.empty()) return;
  assert(rows.size() == tuples.size());
  const int restored = num_rows_ + static_cast<int>(rows.size());
  for (AttributeId col : encoded_) {
    Column& c = Detach(col);
    std::vector<uint32_t> codes(restored);
    size_t next_restore = 0;
    int read = 0;
    for (int pos = 0; pos < restored; ++pos) {
      if (next_restore < rows.size() && rows[next_restore] == pos) {
        codes[pos] = Encode(&c, tuples[next_restore][col]);
        ++next_restore;
      } else {
        codes[pos] = c.codes[read++];
      }
    }
    c.codes = std::move(codes);
  }
  num_rows_ = restored;
}

Table EncodedTable::Decode(const TableSchema& schema) const {
  assert(schema.num_attributes() == num_columns());
  assert(encoded_ == AttributeSet::FullSet(num_columns()));
  Table out(schema);
  for (int row = 0; row < num_rows_; ++row) {
    std::vector<Value> values;
    values.reserve(num_columns());
    for (AttributeId col = 0; col < num_columns(); ++col) {
      values.push_back(DecodeCode(col, columns_[col]->codes[row]));
    }
    Status st = out.AddRow(Tuple(std::move(values)));
    assert(st.ok());
    (void)st;
  }
  return out;
}

EncodedTable EncodedTable::GatherRows(const std::vector<int>& rows,
                                      ThreadPool* pool) const {
  EncodedTable out(num_columns());
  out.encoded_ = encoded_;
  out.num_rows_ = static_cast<int>(rows.size());
  std::vector<AttributeId> cols;
  cols.reserve(encoded_.size());
  for (AttributeId col : encoded_) cols.push_back(col);
  auto gather_one = [&](AttributeId col) {
    const Column& src = *columns_[col];
    Column& dst = *out.columns_[col];
    dst.values = src.values;
    dst.dict = src.dict;
    dst.codes.reserve(rows.size());
    for (int row : rows) {
      const uint32_t code = src.codes[row];
      if (code == kNullCode) ++dst.null_count;
      dst.codes.push_back(code);
    }
  };
  if (pool != nullptr && cols.size() > 1) {
    pool->RunTasks(static_cast<int>(cols.size()),
                   [&](int j) { gather_one(cols[j]); });
  } else {
    for (AttributeId col : cols) gather_one(col);
  }
  return out;
}

EncodedTable EncodedTable::GatherColumns(const std::vector<AttributeId>& cols,
                                         ThreadPool* pool) const {
  EncodedTable out(static_cast<int>(cols.size()));
  out.num_rows_ = num_rows_;
  auto copy_one = [&](size_t j) {
    assert(encoded_.Contains(cols[j]));
    out.columns_[j] = columns_[cols[j]];  // shared copy-on-write
  };
  if (pool != nullptr && cols.size() > 1) {
    pool->RunTasks(static_cast<int>(cols.size()),
                   [&](int j) { copy_one(static_cast<size_t>(j)); });
  } else {
    for (size_t j = 0; j < cols.size(); ++j) copy_one(j);
  }
  return out;
}

EncodedTable EncodedTable::AllocateTarget(
    const std::vector<std::pair<const EncodedTable*, AttributeId>>& sources,
    int num_rows) {
  EncodedTable out(static_cast<int>(sources.size()));
  out.num_rows_ = num_rows;
  for (size_t j = 0; j < sources.size(); ++j) {
    const auto& [src, col] = sources[j];
    assert(src->encoded_.Contains(col));
    Column& dst = *out.columns_[j];
    dst.values = src->columns_[col]->values;
    dst.dict = src->columns_[col]->dict;
    dst.codes.resize(num_rows);
  }
  return out;
}

void EncodedTable::RecountNulls(ThreadPool* pool) {
  auto recount_one = [&](AttributeId col) {
    Column& c = Detach(col);
    int nulls = 0;
    for (uint32_t code : c.codes) {
      if (code == kNullCode) ++nulls;
    }
    c.null_count = nulls;
  };
  std::vector<AttributeId> cols;
  cols.reserve(encoded_.size());
  for (AttributeId col : encoded_) cols.push_back(col);
  if (pool != nullptr && cols.size() > 1) {
    pool->RunTasks(static_cast<int>(cols.size()),
                   [&](int j) { recount_one(cols[j]); });
  } else {
    for (AttributeId col : cols) recount_one(col);
  }
}

EncodedTable EncodedTable::Concat(const EncodedTable& left,
                                  const EncodedTable& right) {
  assert(left.num_rows_ == right.num_rows_);
  assert(left.encoded_ == AttributeSet::FullSet(left.num_columns()));
  assert(right.encoded_ == AttributeSet::FullSet(right.num_columns()));
  EncodedTable out(left.num_columns() + right.num_columns());
  out.num_rows_ = left.num_rows_;
  for (int j = 0; j < left.num_columns(); ++j) {
    out.columns_[j] = left.columns_[j];  // shared copy-on-write
  }
  for (int j = 0; j < right.num_columns(); ++j) {
    out.columns_[left.num_columns() + j] = right.columns_[j];
  }
  return out;
}

std::vector<int> EncodedTable::DistinctRows(ThreadPool* pool) const {
  std::vector<const std::vector<uint32_t>*> cols;
  cols.reserve(encoded_.size());
  for (AttributeId col : encoded_) cols.push_back(&columns_[col]->codes);

  // CSR hash index over all row codes; a row is a first occurrence iff
  // the bucket walk (ascending) reaches the row itself before any equal
  // row. Duplicates stop at their group's first row, so the walk is
  // O(1) for them; only hash collisions scan further.
  const CodeHashIndex index(cols, num_rows_, pool);
  auto is_first = [&](int row) {
    const CodeHashIndex::Range bucket = index.Bucket(index.row_hash(row));
    for (const int* p = bucket.begin; p != bucket.end; ++p) {
      const int prior = *p;
      if (prior == row) return true;
      bool same = true;
      for (const std::vector<uint32_t>* codes : cols) {
        if ((*codes)[row] != (*codes)[prior]) {
          same = false;
          break;
        }
      }
      if (same) return false;
    }
    return true;
  };

  std::vector<int> out;
  ParallelEmit(
      pool, 0, num_rows_,
      [&](int64_t b, int64_t e) {
        int64_t n = 0;
        for (int64_t row = b; row < e; ++row) {
          if (is_first(static_cast<int>(row))) ++n;
        }
        return n;
      },
      [&](int64_t total) { out.resize(total); },
      [&](int64_t b, int64_t e, int64_t offset) {
        for (int64_t row = b; row < e; ++row) {
          if (is_first(static_cast<int>(row))) {
            out[offset++] = static_cast<int>(row);
          }
        }
      });
  return out;
}

std::vector<uint32_t> EncodedTable::TranslationTo(
    AttributeId col, const EncodedTable& other, AttributeId other_col) const {
  const Column& c = *columns_[col];
  std::vector<uint32_t> map(c.values.size());
  for (size_t code = 0; code < c.values.size(); ++code) {
    map[code] = other.LookupCode(other_col, c.values[code]);
  }
  return map;
}

bool EncodedTable::EquivalentTo(const EncodedTable& other) const {
  if (num_rows_ != other.num_rows_ ||
      num_columns() != other.num_columns() || encoded_ != other.encoded_) {
    return false;
  }
  for (AttributeId col : encoded_) {
    const std::vector<uint32_t>& a = columns_[col]->codes;
    const std::vector<uint32_t>& b = other.columns_[col]->codes;
    std::unordered_map<uint32_t, uint32_t> fwd, rev;
    for (int row = 0; row < num_rows_; ++row) {
      if ((a[row] == kNullCode) != (b[row] == kNullCode)) return false;
      if (a[row] == kNullCode) continue;
      auto [fit, finserted] = fwd.emplace(a[row], b[row]);
      if (!finserted && fit->second != b[row]) return false;
      if (finserted &&
          !(DecodeCode(col, a[row]) == other.DecodeCode(col, b[row]))) {
        return false;
      }
      auto [rit, rinserted] = rev.emplace(b[row], a[row]);
      if (!rinserted && rit->second != a[row]) return false;
    }
  }
  return true;
}

bool EncodedTable::BitIdentical(const EncodedTable& other) const {
  if (num_rows_ != other.num_rows_ ||
      num_columns() != other.num_columns() || encoded_ != other.encoded_) {
    return false;
  }
  for (AttributeId col : encoded_) {
    const Column& a = *columns_[col];
    const Column& b = *other.columns_[col];
    if (a.codes != b.codes || a.null_count != b.null_count ||
        a.values.size() != b.values.size()) {
      return false;
    }
    for (size_t code = 0; code < a.values.size(); ++code) {
      if (!(a.values[code] == b.values[code])) return false;
    }
  }
  return true;
}

}  // namespace sqlnf
