// Weak and strong similarity of tuples (paper, Section 2).
//
//   t[X] ~w t'[X]  :⟺  ∀A∈X. t[A] = t'[A] ∨ t[A] = ⊥ ∨ t'[A] = ⊥
//   t[X] ~s t'[X]  :⟺  ∀A∈X. t[A] = t'[A] ≠ ⊥
//
// Weak and strong similarity coincide on X-total tuples. These two
// notions induce the possible/certain split for both keys and FDs:
// strong similarity on the LHS triggers a possible constraint, weak
// similarity a certain one.

#ifndef SQLNF_CORE_SIMILARITY_H_
#define SQLNF_CORE_SIMILARITY_H_

#include "sqlnf/core/attribute_set.h"
#include "sqlnf/core/table.h"

namespace sqlnf {

/// t[X] ~w t'[X]: per attribute, equal or at least one side is ⊥.
bool WeaklySimilar(const Tuple& t, const Tuple& u, const AttributeSet& x);

/// t[X] ~s t'[X]: per attribute, both non-null and equal.
bool StronglySimilar(const Tuple& t, const Tuple& u, const AttributeSet& x);

}  // namespace sqlnf

#endif  // SQLNF_CORE_SIMILARITY_H_
