// Value: one cell of an SQL table — the null marker ⊥, an integer, or a
// string.
//
// Paper, Section 2: every attribute domain contains the distinguished
// null marker ⊥ interpreted as "no information" [Zaniolo/Lien]. ⊥ is NOT
// a domain value; similarity and equality treat it specially (see
// similarity.h). Values compare by (kind, payload): an Int never equals
// a Str, and ⊥ equals only ⊥ (tuple equality t[Y] = t'[Y] in the paper
// compares markers syntactically).

#ifndef SQLNF_CORE_VALUE_H_
#define SQLNF_CORE_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>

namespace sqlnf {

/// One table cell: ⊥, an int64, or a string. Regular value type.
class Value {
 public:
  enum class Kind : uint8_t { kNull = 0, kInt = 1, kString = 2 };

  /// Constructs ⊥.
  Value() : kind_(Kind::kNull), int_(0) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.kind_ = Kind::kInt;
    out.int_ = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.kind_ = Kind::kString;
    out.str_ = std::move(v);
    return out;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Requires kind() == kInt.
  int64_t int_value() const { return int_; }
  /// Requires kind() == kString.
  const std::string& str_value() const { return str_; }

  /// Syntactic equality: ⊥ == ⊥, Int(i) == Int(i), Str(s) == Str(s).
  bool operator==(const Value& other) const {
    if (kind_ != other.kind_) return false;
    switch (kind_) {
      case Kind::kNull:
        return true;
      case Kind::kInt:
        return int_ == other.int_;
      case Kind::kString:
        return str_ == other.str_;
    }
    return false;
  }

  /// Total order (⊥ < ints < strings) for sorting / std::map keys.
  bool operator<(const Value& other) const {
    if (kind_ != other.kind_) return kind_ < other.kind_;
    switch (kind_) {
      case Kind::kNull:
        return false;
      case Kind::kInt:
        return int_ < other.int_;
      case Kind::kString:
        return str_ < other.str_;
    }
    return false;
  }

  size_t Hash() const {
    switch (kind_) {
      case Kind::kNull:
        return 0x9e3779b97f4a7c15ull;
      case Kind::kInt:
        return std::hash<int64_t>{}(int_) * 3 + 1;
      case Kind::kString:
        return std::hash<std::string>{}(str_) * 3 + 2;
    }
    return 0;
  }

  /// "NULL" for ⊥, decimal digits for ints, the raw text for strings.
  std::string ToString() const;

 private:
  Kind kind_;
  int64_t int_;
  std::string str_;
};

}  // namespace sqlnf

#endif  // SQLNF_CORE_VALUE_H_
