// Implementation of the explicit SIMD kernel layer. Together with
// util/simd.h this is the only translation unit allowed to include
// intrinsics headers or touch SQLNF_SIMD_* macros (lint rule
// `simd-confinement`).
//
// Layout: dispatch state first, then per-kernel variants in scalar →
// 128-bit → AVX2 order, then the public dispatchers. The scalar
// bodies are the semantics; every vector body is a transliteration
// that must stay bit-identical (the kernel unit tests and the
// level-sweeping fuzz/differential harnesses check this).
//
// Vector techniques used below:
//   * mask expansion — a compare produces a per-lane bit mask
//     (movemask); kMaskBytes[m] expands the 8-bit mask to eight 0/1
//     match bytes in one 64-bit word, which is then stored or ANDed
//     into the output in a single 8-byte write.
//   * unsigned compares — SSE2/AVX2 only have signed 32-bit compares;
//     `t < span (unsigned)` becomes `(t ^ 2^31) <s (span ^ 2^31)`.
//     NEON compares unsigned natively.
//   * clamped gathers — rank/table lookups clamp codes with unsigned
//     min(code, d) BEFORE the gather, so the ⊥/miss sentinels
//     (0xFFFFFFFE/F) land on slot d and every index fits in a signed
//     i32 gather lane.
//   * compress-store — _mm256_permutevar8x32_epi32 with a 256-entry
//     permutation table packs selected row ids to the lane front; the
//     packed vector is spilled to a local buffer and only
//     popcount(mask) ids are memcpy'd out, because the destination
//     window is exactly sized per ParallelEmit chunk and a full
//     32-byte store would stomp the neighbouring chunk's window.
//   * 64-bit FNV multiply — SSE2/AVX2 lack a 64-bit mullo; the FNV
//     prime 0x100000001B3 is split into hi/lo halves and reassembled
//     from three 32×32→64 mul_epu32 partial products.

#include "sqlnf/core/simd_kernels.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "sqlnf/util/fnv.h"
#include "sqlnf/util/simd.h"

#if SQLNF_SIMD_X86
#include <immintrin.h>
#endif
#if SQLNF_SIMD_NEON
#include <arm_neon.h>
#endif

namespace sqlnf {
namespace simd {
namespace {

// ---------------------------------------------------------------------------
// Dispatch state
// ---------------------------------------------------------------------------

Level CpuMax() {
#if SQLNF_SIMD_HAVE_AVX2
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
#if SQLNF_SIMD_X86 || SQLNF_SIMD_NEON
  return Level::kSimd128;
#else
  return Level::kScalar;
#endif
}

constexpr uint8_t kNoOverride = 0xFF;
std::atomic<uint8_t> g_test_override{kNoOverride};

Level EnvCappedLevel() {
  // getenv() is banned in src/ by the nondeterminism lint rule; this
  // call is its one sanctioned exemption, because the bit-identity
  // contract means the dispatch level can never change a result —
  // SQLNF_SIMD_LEVEL selects an implementation, not an answer.
  static const Level cached = [] {
    Level cap = DetectedLevel();
    const char* env = std::getenv("SQLNF_SIMD_LEVEL");
    Level parsed = Level::kScalar;
    if (env != nullptr && ParseLevel(env, &parsed) && parsed < cap) {
      cap = parsed;
    }
    return cap;
  }();
  return cached;
}

// Requests above what the CPU/build supports degrade to the best
// available level instead of faulting on an illegal instruction.
Level ClampToDetected(Level level) {
  Level max = DetectedLevel();
  return level > max ? max : level;
}

// ---------------------------------------------------------------------------
// Lookup tables
// ---------------------------------------------------------------------------

// kMaskBytes[m] holds eight 0/1 bytes: byte j is bit j of m.
constexpr std::array<uint64_t, 256> MakeMaskBytes() {
  std::array<uint64_t, 256> t{};
  for (int m = 0; m < 256; ++m) {
    uint64_t w = 0;
    for (int j = 0; j < 8; ++j) {
      if (m & (1 << j)) w |= uint64_t{1} << (8 * j);
    }
    t[static_cast<size_t>(m)] = w;
  }
  return t;
}
constexpr std::array<uint64_t, 256> kMaskBytes = MakeMaskBytes();

// kCompress[m] is the permutevar8x32 index vector that packs the lanes
// whose bit is set in m to the front (ascending). Trailing lanes are
// zero; they are never stored (the copy is popcount-limited).
struct CompressTable {
  uint32_t idx[256][8];
};
constexpr CompressTable MakeCompressTable() {
  CompressTable t{};
  for (int m = 0; m < 256; ++m) {
    int k = 0;
    for (uint32_t lane = 0; lane < 8; ++lane) {
      if (m & (1 << lane)) t.idx[m][k++] = lane;
    }
    for (; k < 8; ++k) t.idx[m][k] = 0;
  }
  return t;
}
constexpr CompressTable kCompress = MakeCompressTable();

// Expands an 8-bit lane mask to eight 0/1 match bytes and stores or
// ANDs them over dst in one 8-byte write.
inline void StoreMask8(uint32_t m, bool and_mode, uint8_t* dst) {
  uint64_t bytes = kMaskBytes[m & 0xFFu];
  if (and_mode) {
    uint64_t old = 0;
    std::memcpy(&old, dst, 8);
    bytes &= old;
  }
  std::memcpy(dst, &bytes, 8);
}

// ---------------------------------------------------------------------------
// Scalar reference kernels — the differential oracle. Auto-
// vectorization is disabled (SQLNF_SIMD_SCALAR_FN / NO_AUTOVEC) so the
// scalar level is genuinely scalar: it anchors both the correctness
// sweep and the E19 speedup baseline. Each vector kernel's tail loop
// reuses these over the remainder.
// ---------------------------------------------------------------------------

SQLNF_SIMD_SCALAR_FN void EqCodeScalar(const uint32_t* codes, int n,
                                       uint32_t want, bool and_mode,
                                       uint8_t* out) {
  if (and_mode) {
    SQLNF_SIMD_NO_AUTOVEC
    for (int i = 0; i < n; ++i) {
      out[i] &= static_cast<uint8_t>(codes[i] == want);
    }
  } else {
    SQLNF_SIMD_NO_AUTOVEC
    for (int i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(codes[i] == want);
    }
  }
}

SQLNF_SIMD_SCALAR_FN void NeCodeScalar(const uint32_t* codes, int n,
                                       uint32_t want, bool and_mode,
                                       uint8_t* out) {
  if (and_mode) {
    SQLNF_SIMD_NO_AUTOVEC
    for (int i = 0; i < n; ++i) {
      out[i] &= static_cast<uint8_t>(codes[i] != want);
    }
  } else {
    SQLNF_SIMD_NO_AUTOVEC
    for (int i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(codes[i] != want);
    }
  }
}

SQLNF_SIMD_SCALAR_FN void CodeIntervalScalar(const uint32_t* codes, int n,
                                             uint32_t lo, uint32_t span,
                                             bool and_mode, uint8_t* out) {
  if (and_mode) {
    SQLNF_SIMD_NO_AUTOVEC
    for (int i = 0; i < n; ++i) {
      out[i] &= static_cast<uint8_t>(codes[i] - lo < span);
    }
  } else {
    SQLNF_SIMD_NO_AUTOVEC
    for (int i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(codes[i] - lo < span);
    }
  }
}

SQLNF_SIMD_SCALAR_FN void RankIntervalScalar(const uint32_t* codes, int n,
                                             const uint32_t* rank, uint32_t d,
                                             uint32_t lo, uint32_t span,
                                             bool and_mode, uint8_t* out) {
  if (and_mode) {
    SQLNF_SIMD_NO_AUTOVEC
    for (int i = 0; i < n; ++i) {
      uint32_t c = codes[i];
      out[i] &= static_cast<uint8_t>(rank[c < d ? c : d] - lo < span);
    }
  } else {
    SQLNF_SIMD_NO_AUTOVEC
    for (int i = 0; i < n; ++i) {
      uint32_t c = codes[i];
      out[i] = static_cast<uint8_t>(rank[c < d ? c : d] - lo < span);
    }
  }
}

SQLNF_SIMD_SCALAR_FN void ByteTableScalar(const uint32_t* codes, int n,
                                          const uint8_t* table, uint32_t d,
                                          bool and_mode, uint8_t* out) {
  if (and_mode) {
    SQLNF_SIMD_NO_AUTOVEC
    for (int i = 0; i < n; ++i) {
      uint32_t c = codes[i];
      out[i] &= static_cast<uint8_t>(table[c < d ? c : d] != 0);
    }
  } else {
    SQLNF_SIMD_NO_AUTOVEC
    for (int i = 0; i < n; ++i) {
      uint32_t c = codes[i];
      out[i] = static_cast<uint8_t>(table[c < d ? c : d] != 0);
    }
  }
}

SQLNF_SIMD_SCALAR_FN void OrBytesScalar(const uint8_t* src, int n,
                                        uint8_t* dst) {
  SQLNF_SIMD_NO_AUTOVEC
  for (int i = 0; i < n; ++i) dst[i] |= src[i];
}

SQLNF_SIMD_SCALAR_FN int64_t CountBytesScalar(const uint8_t* bytes, int n) {
  int64_t total = 0;
  SQLNF_SIMD_NO_AUTOVEC
  for (int i = 0; i < n; ++i) total += bytes[i];
  return total;
}

SQLNF_SIMD_SCALAR_FN int CompressStoreScalar(const uint8_t* match, int n,
                                             int base, int* out) {
  int count = 0;
  SQLNF_SIMD_NO_AUTOVEC
  for (int i = 0; i < n; ++i) {
    if (match[i] != 0) out[count++] = base + i;
  }
  return count;
}

SQLNF_SIMD_SCALAR_FN void FnvMixCodesScalar(const uint32_t* codes, int n,
                                            uint64_t* h) {
  SQLNF_SIMD_NO_AUTOVEC
  for (int i = 0; i < n; ++i) {
    h[i] = (h[i] ^ codes[i]) * kFnv64Prime;
  }
}

SQLNF_SIMD_SCALAR_FN void FoldMaskScalar(const uint64_t* h, int n,
                                         uint64_t mask, uint32_t* out) {
  SQLNF_SIMD_NO_AUTOVEC
  for (int i = 0; i < n; ++i) {
    out[i] = static_cast<uint32_t>((h[i] ^ (h[i] >> 32)) & mask);
  }
}

SQLNF_SIMD_SCALAR_FN void GatherCodesScalar(const uint32_t* codes,
                                            const int* rows, int n,
                                            uint32_t* out) {
  SQLNF_SIMD_NO_AUTOVEC
  for (int i = 0; i < n; ++i) out[i] = codes[rows[i]];
}

// ---------------------------------------------------------------------------
// SSE2 kernels (x86-64 baseline — no target attribute needed). Eight
// lanes per iteration via two 128-bit vectors, so the mask-expansion
// write stays a single 8-byte word. Gather-shaped kernels
// (RankInterval / ByteTable / GatherCodes) and the permute-based
// compress-store have no SSE2 story worth having — they fall through
// to the scalar reference in the dispatchers.
// ---------------------------------------------------------------------------

#if SQLNF_SIMD_X86

// Combines the movemask nibbles of two 4-lane compares into one 8-bit
// lane mask (lanes i..i+7).
inline uint32_t Mask8Sse2(__m128i eq_lo, __m128i eq_hi) {
  uint32_t m = static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(eq_lo)));
  m |= static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(eq_hi))) << 4;
  return m;
}

void EqCodeSse2(const uint32_t* codes, int n, uint32_t want, bool and_mode,
                uint8_t* out) {
  const __m128i w = _mm_set1_epi32(static_cast<int>(want));
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i + 4));
    StoreMask8(Mask8Sse2(_mm_cmpeq_epi32(a, w), _mm_cmpeq_epi32(b, w)),
               and_mode, out + i);
  }
  EqCodeScalar(codes + i, n - i, want, and_mode, out + i);
}

void NeCodeSse2(const uint32_t* codes, int n, uint32_t want, bool and_mode,
                uint8_t* out) {
  const __m128i w = _mm_set1_epi32(static_cast<int>(want));
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i + 4));
    uint32_t m =
        Mask8Sse2(_mm_cmpeq_epi32(a, w), _mm_cmpeq_epi32(b, w)) ^ 0xFFu;
    StoreMask8(m, and_mode, out + i);
  }
  NeCodeScalar(codes + i, n - i, want, and_mode, out + i);
}

void CodeIntervalSse2(const uint32_t* codes, int n, uint32_t lo,
                      uint32_t span, bool and_mode, uint8_t* out) {
  const __m128i lov = _mm_set1_epi32(static_cast<int>(lo));
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i spanb = _mm_set1_epi32(static_cast<int>(span ^ 0x80000000u));
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i + 4));
    __m128i ta = _mm_xor_si128(_mm_sub_epi32(a, lov), bias);
    __m128i tb = _mm_xor_si128(_mm_sub_epi32(b, lov), bias);
    StoreMask8(
        Mask8Sse2(_mm_cmplt_epi32(ta, spanb), _mm_cmplt_epi32(tb, spanb)),
        and_mode, out + i);
  }
  CodeIntervalScalar(codes + i, n - i, lo, span, and_mode, out + i);
}

void OrBytesSse2(const uint8_t* src, int n, uint8_t* dst) {
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_or_si128(s, d));
  }
  OrBytesScalar(src + i, n - i, dst + i);
}

int64_t CountBytesSse2(const uint8_t* bytes, int n) {
  __m128i acc = _mm_setzero_si128();
  const __m128i zero = _mm_setzero_si128();
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + i));
    acc = _mm_add_epi64(acc, _mm_sad_epu8(v, zero));
  }
  alignas(16) uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  return static_cast<int64_t>(lanes[0] + lanes[1]) +
         CountBytesScalar(bytes + i, n - i);
}

// (h ^ code) * kFnv64Prime over two 64-bit lanes. The prime splits as
// hi 0x100 / lo 0x1B3; the product is rebuilt from mul_epu32 partials:
//   res = lo(x)*0x1B3 + ((lo(x)*0x100 + hi(x)*0x1B3) << 32).
void FnvMixCodesSse2(const uint32_t* codes, int n, uint64_t* h) {
  const __m128i p_lo = _mm_set1_epi64x(0x1B3);
  const __m128i p_hi = _mm_set1_epi64x(0x100);
  const __m128i zero = _mm_setzero_si128();
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i hv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + i));
    // Two u32 codes, zero-extended into the two u64 lanes.
    __m128i c =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i));
    __m128i x = _mm_xor_si128(hv, _mm_unpacklo_epi32(c, zero));
    __m128i lo_part = _mm_mul_epu32(x, p_lo);
    __m128i mid = _mm_add_epi64(_mm_mul_epu32(x, p_hi),
                                _mm_mul_epu32(_mm_srli_epi64(x, 32), p_lo));
    __m128i res = _mm_add_epi64(lo_part, _mm_slli_epi64(mid, 32));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(h + i), res);
  }
  FnvMixCodesScalar(codes + i, n - i, h + i);
}

void FoldMaskSse2(const uint64_t* h, int n, uint64_t mask, uint32_t* out) {
  const __m128i maskv = _mm_set1_epi64x(static_cast<long long>(mask));
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + i));
    __m128i f = _mm_and_si128(_mm_xor_si128(v, _mm_srli_epi64(v, 32)), maskv);
    // Pack the two low dwords (lanes 0 and 2) into the low 8 bytes.
    __m128i packed = _mm_shuffle_epi32(f, _MM_SHUFFLE(3, 3, 2, 0));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i), packed);
  }
  FoldMaskScalar(h + i, n - i, mask, out + i);
}

#endif  // SQLNF_SIMD_X86

// ---------------------------------------------------------------------------
// NEON kernels — the portable 128-bit path on AArch64. Only the
// streaming compares are vectorized (NEON compares unsigned natively);
// gather-shaped kernels stay scalar, same as SSE2.
// ---------------------------------------------------------------------------

#if SQLNF_SIMD_NEON

// Narrows two 32-bit lane masks (0 / 0xFFFFFFFF) to eight 0/1 match
// bytes and stores or ANDs them.
inline void StoreLanes8Neon(uint32x4_t m_lo, uint32x4_t m_hi, bool and_mode,
                            uint8_t* dst) {
  uint16x8_t m16 = vcombine_u16(vmovn_u32(m_lo), vmovn_u32(m_hi));
  uint8x8_t bytes = vand_u8(vmovn_u16(m16), vdup_n_u8(1));
  if (and_mode) bytes = vand_u8(bytes, vld1_u8(dst));
  vst1_u8(dst, bytes);
}

void EqCodeNeon(const uint32_t* codes, int n, uint32_t want, bool and_mode,
                uint8_t* out) {
  const uint32x4_t w = vdupq_n_u32(want);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    StoreLanes8Neon(vceqq_u32(vld1q_u32(codes + i), w),
                    vceqq_u32(vld1q_u32(codes + i + 4), w), and_mode,
                    out + i);
  }
  EqCodeScalar(codes + i, n - i, want, and_mode, out + i);
}

void NeCodeNeon(const uint32_t* codes, int n, uint32_t want, bool and_mode,
                uint8_t* out) {
  const uint32x4_t w = vdupq_n_u32(want);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    StoreLanes8Neon(vmvnq_u32(vceqq_u32(vld1q_u32(codes + i), w)),
                    vmvnq_u32(vceqq_u32(vld1q_u32(codes + i + 4), w)),
                    and_mode, out + i);
  }
  NeCodeScalar(codes + i, n - i, want, and_mode, out + i);
}

void CodeIntervalNeon(const uint32_t* codes, int n, uint32_t lo,
                      uint32_t span, bool and_mode, uint8_t* out) {
  const uint32x4_t lov = vdupq_n_u32(lo);
  const uint32x4_t spanv = vdupq_n_u32(span);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    uint32x4_t ta = vsubq_u32(vld1q_u32(codes + i), lov);
    uint32x4_t tb = vsubq_u32(vld1q_u32(codes + i + 4), lov);
    StoreLanes8Neon(vcltq_u32(ta, spanv), vcltq_u32(tb, spanv), and_mode,
                    out + i);
  }
  CodeIntervalScalar(codes + i, n - i, lo, span, and_mode, out + i);
}

#endif  // SQLNF_SIMD_NEON

// ---------------------------------------------------------------------------
// AVX2 kernels. Compiled with a per-function target attribute so the
// rest of the binary keeps the baseline ISA; whether they run is
// decided at runtime (ActiveLevel). Eight 32-bit lanes per iteration.
// ---------------------------------------------------------------------------

#if SQLNF_SIMD_HAVE_AVX2

SQLNF_SIMD_TARGET_AVX2 void EqCodeAvx2(const uint32_t* codes, int n,
                                       uint32_t want, bool and_mode,
                                       uint8_t* out) {
  const __m256i w = _mm256_set1_epi32(static_cast<int>(want));
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    uint32_t m = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, w))));
    StoreMask8(m, and_mode, out + i);
  }
  EqCodeScalar(codes + i, n - i, want, and_mode, out + i);
}

SQLNF_SIMD_TARGET_AVX2 void NeCodeAvx2(const uint32_t* codes, int n,
                                       uint32_t want, bool and_mode,
                                       uint8_t* out) {
  const __m256i w = _mm256_set1_epi32(static_cast<int>(want));
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    uint32_t m = static_cast<uint32_t>(_mm256_movemask_ps(
                     _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, w)))) ^
                 0xFFu;
    StoreMask8(m, and_mode, out + i);
  }
  NeCodeScalar(codes + i, n - i, want, and_mode, out + i);
}

SQLNF_SIMD_TARGET_AVX2 void CodeIntervalAvx2(const uint32_t* codes, int n,
                                             uint32_t lo, uint32_t span,
                                             bool and_mode, uint8_t* out) {
  const __m256i lov = _mm256_set1_epi32(static_cast<int>(lo));
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i spanb =
      _mm256_set1_epi32(static_cast<int>(span ^ 0x80000000u));
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    // t <u span  ⟺  (span ^ 2^31) >s (t ^ 2^31); AVX2 only has cmpgt.
    __m256i t = _mm256_xor_si256(_mm256_sub_epi32(v, lov), bias);
    __m256i cmp = _mm256_cmpgt_epi32(spanb, t);
    uint32_t m = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(cmp)));
    StoreMask8(m, and_mode, out + i);
  }
  CodeIntervalScalar(codes + i, n - i, lo, span, and_mode, out + i);
}

SQLNF_SIMD_TARGET_AVX2 void RankIntervalAvx2(const uint32_t* codes, int n,
                                             const uint32_t* rank, uint32_t d,
                                             uint32_t lo, uint32_t span,
                                             bool and_mode, uint8_t* out) {
  const __m256i dv = _mm256_set1_epi32(static_cast<int>(d));
  const __m256i lov = _mm256_set1_epi32(static_cast<int>(lo));
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i spanb =
      _mm256_set1_epi32(static_cast<int>(span ^ 0x80000000u));
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    // Unsigned clamp first: ⊥/miss (0xFFFFFFFE/F) land on the sentinel
    // slot d, and every index is then ≤ d < 2^31, safe for the signed
    // i32 gather.
    __m256i idx = _mm256_min_epu32(v, dv);
    __m256i g = _mm256_i32gather_epi32(reinterpret_cast<const int*>(rank),
                                       idx, 4);
    __m256i t = _mm256_xor_si256(_mm256_sub_epi32(g, lov), bias);
    uint32_t m = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(spanb, t))));
    StoreMask8(m, and_mode, out + i);
  }
  RankIntervalScalar(codes + i, n - i, rank, d, lo, span, and_mode, out + i);
}

SQLNF_SIMD_TARGET_AVX2 void ByteTableAvx2(const uint32_t* codes, int n,
                                          const uint8_t* table, uint32_t d,
                                          bool and_mode, uint8_t* out) {
  const __m256i dv = _mm256_set1_epi32(static_cast<int>(d));
  const __m256i low_byte = _mm256_set1_epi32(0xFF);
  const __m256i zero = _mm256_setzero_si256();
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    __m256i idx = _mm256_min_epu32(v, dv);
    // Scale-1 gather reads 4 bytes at table+idx; the table carries
    // kByteTablePad zero bytes past slot d so the over-read is in
    // bounds. Only the low byte is the membership bit.
    __m256i g = _mm256_i32gather_epi32(reinterpret_cast<const int*>(table),
                                       idx, 1);
    __m256i b = _mm256_and_si256(g, low_byte);
    uint32_t z = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(b, zero))));
    StoreMask8(~z & 0xFFu, and_mode, out + i);
  }
  ByteTableScalar(codes + i, n - i, table, d, and_mode, out + i);
}

SQLNF_SIMD_TARGET_AVX2 void OrBytesAvx2(const uint8_t* src, int n,
                                        uint8_t* dst) {
  int i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(s, d));
  }
  OrBytesScalar(src + i, n - i, dst + i);
}

SQLNF_SIMD_TARGET_AVX2 int64_t CountBytesAvx2(const uint8_t* bytes, int n) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  int i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bytes + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(v, zero));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return static_cast<int64_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]) +
         CountBytesScalar(bytes + i, n - i);
}

SQLNF_SIMD_TARGET_AVX2 int CompressStoreAvx2(const uint8_t* match, int n,
                                             int base, int* out) {
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m128i zero128 = _mm_setzero_si128();
  int count = 0;
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w = 0;
    std::memcpy(&w, match + i, 8);
    if (w == 0) continue;
    __m128i bytes = _mm_cvtsi64_si128(static_cast<long long>(w));
    uint32_t m = ~static_cast<uint32_t>(
                     _mm_movemask_epi8(_mm_cmpeq_epi8(bytes, zero128))) &
                 0xFFu;
    __m256i ids = _mm256_add_epi32(_mm256_set1_epi32(base + i), iota);
    __m256i perm = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kCompress.idx[m]));
    __m256i packed = _mm256_permutevar8x32_epi32(ids, perm);
    // Spill locally and copy exactly popcount ids: the output window
    // is sized to the chunk's match count (ParallelEmit), and a full
    // 32-byte store would cross into the next chunk's window.
    alignas(32) int buf[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf), packed);
    int c = __builtin_popcount(m);
    std::memcpy(out + count, buf, static_cast<size_t>(c) * sizeof(int));
    count += c;
  }
  count += CompressStoreScalar(match + i, n - i, base + i, out + count);
  return count;
}

SQLNF_SIMD_TARGET_AVX2 void FnvMixCodesAvx2(const uint32_t* codes, int n,
                                            uint64_t* h) {
  const __m256i p_lo = _mm256_set1_epi64x(0x1B3);
  const __m256i p_hi = _mm256_set1_epi64x(0x100);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i hv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + i));
    __m256i c = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i)));
    __m256i x = _mm256_xor_si256(hv, c);
    __m256i lo_part = _mm256_mul_epu32(x, p_lo);
    __m256i mid =
        _mm256_add_epi64(_mm256_mul_epu32(x, p_hi),
                         _mm256_mul_epu32(_mm256_srli_epi64(x, 32), p_lo));
    __m256i res = _mm256_add_epi64(lo_part, _mm256_slli_epi64(mid, 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(h + i), res);
  }
  FnvMixCodesScalar(codes + i, n - i, h + i);
}

SQLNF_SIMD_TARGET_AVX2 void FoldMaskAvx2(const uint64_t* h, int n,
                                         uint64_t mask, uint32_t* out) {
  const __m256i maskv = _mm256_set1_epi64x(static_cast<long long>(mask));
  // Packs the low dwords of the four 64-bit lanes into the low 128.
  const __m256i pack = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + i));
    __m256i f =
        _mm256_and_si256(_mm256_xor_si256(v, _mm256_srli_epi64(v, 32)), maskv);
    __m128i packed =
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(f, pack));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), packed);
  }
  FoldMaskScalar(h + i, n - i, mask, out + i);
}

SQLNF_SIMD_TARGET_AVX2 void GatherCodesAvx2(const uint32_t* codes,
                                            const int* rows, int n,
                                            uint32_t* out) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    __m256i g =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(codes), r, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), g);
  }
  GatherCodesScalar(codes, rows + i, n - i, out + i);
}

#endif  // SQLNF_SIMD_HAVE_AVX2

}  // namespace

// ---------------------------------------------------------------------------
// Dispatch API
// ---------------------------------------------------------------------------

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSimd128:
      return "simd128";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseLevel(const char* name, Level* out) {
  if (name == nullptr || out == nullptr) return false;
  const auto is = [name](const char* s) { return std::strcmp(name, s) == 0; };
  if (is("scalar")) {
    *out = Level::kScalar;
    return true;
  }
  if (is("simd128") || is("sse2") || is("neon")) {
    *out = Level::kSimd128;
    return true;
  }
  if (is("avx2")) {
    *out = Level::kAvx2;
    return true;
  }
  return false;
}

Level DetectedLevel() {
  static const Level cached = CpuMax();
  return cached;
}

Level ActiveLevel() {
  uint8_t o = g_test_override.load(std::memory_order_relaxed);
  if (o != kNoOverride) return static_cast<Level>(o);
  return EnvCappedLevel();
}

void SetLevelForTesting(Level level) {
  g_test_override.store(static_cast<uint8_t>(ClampToDetected(level)),
                        std::memory_order_relaxed);
}

void ClearLevelForTesting() {
  g_test_override.store(kNoOverride, std::memory_order_relaxed);
}

void EqCode(Level level, const uint32_t* codes, int n, uint32_t want,
            Store store, uint8_t* out) {
  const bool and_mode = store == Store::kAnd;
  const Level l = ClampToDetected(level);
#if SQLNF_SIMD_HAVE_AVX2
  if (l == Level::kAvx2) {
    EqCodeAvx2(codes, n, want, and_mode, out);
    return;
  }
#endif
#if SQLNF_SIMD_X86
  if (l >= Level::kSimd128) {
    EqCodeSse2(codes, n, want, and_mode, out);
    return;
  }
#elif SQLNF_SIMD_NEON
  if (l >= Level::kSimd128) {
    EqCodeNeon(codes, n, want, and_mode, out);
    return;
  }
#endif
  (void)l;
  EqCodeScalar(codes, n, want, and_mode, out);
}

void NeCode(Level level, const uint32_t* codes, int n, uint32_t want,
            Store store, uint8_t* out) {
  const bool and_mode = store == Store::kAnd;
  const Level l = ClampToDetected(level);
#if SQLNF_SIMD_HAVE_AVX2
  if (l == Level::kAvx2) {
    NeCodeAvx2(codes, n, want, and_mode, out);
    return;
  }
#endif
#if SQLNF_SIMD_X86
  if (l >= Level::kSimd128) {
    NeCodeSse2(codes, n, want, and_mode, out);
    return;
  }
#elif SQLNF_SIMD_NEON
  if (l >= Level::kSimd128) {
    NeCodeNeon(codes, n, want, and_mode, out);
    return;
  }
#endif
  (void)l;
  NeCodeScalar(codes, n, want, and_mode, out);
}

void CodeInterval(Level level, const uint32_t* codes, int n, uint32_t lo,
                  uint32_t span, Store store, uint8_t* out) {
  const bool and_mode = store == Store::kAnd;
  const Level l = ClampToDetected(level);
#if SQLNF_SIMD_HAVE_AVX2
  if (l == Level::kAvx2) {
    CodeIntervalAvx2(codes, n, lo, span, and_mode, out);
    return;
  }
#endif
#if SQLNF_SIMD_X86
  if (l >= Level::kSimd128) {
    CodeIntervalSse2(codes, n, lo, span, and_mode, out);
    return;
  }
#elif SQLNF_SIMD_NEON
  if (l >= Level::kSimd128) {
    CodeIntervalNeon(codes, n, lo, span, and_mode, out);
    return;
  }
#endif
  (void)l;
  CodeIntervalScalar(codes, n, lo, span, and_mode, out);
}

void RankInterval(Level level, const uint32_t* codes, int n,
                  const uint32_t* rank, uint32_t d, uint32_t lo,
                  uint32_t span, Store store, uint8_t* out) {
  const bool and_mode = store == Store::kAnd;
  const Level l = ClampToDetected(level);
#if SQLNF_SIMD_HAVE_AVX2
  if (l == Level::kAvx2) {
    RankIntervalAvx2(codes, n, rank, d, lo, span, and_mode, out);
    return;
  }
#endif
  // No 128-bit variant: the kernel is gather-bound and SSE2/NEON have
  // no gather — the scalar reference is the 128-bit path too.
  (void)l;
  RankIntervalScalar(codes, n, rank, d, lo, span, and_mode, out);
}

void ByteTable(Level level, const uint32_t* codes, int n,
               const uint8_t* table, uint32_t d, Store store, uint8_t* out) {
  const bool and_mode = store == Store::kAnd;
  const Level l = ClampToDetected(level);
#if SQLNF_SIMD_HAVE_AVX2
  if (l == Level::kAvx2) {
    ByteTableAvx2(codes, n, table, d, and_mode, out);
    return;
  }
#endif
  (void)l;
  ByteTableScalar(codes, n, table, d, and_mode, out);
}

void OrBytes(Level level, const uint8_t* src, int n, uint8_t* dst) {
  const Level l = ClampToDetected(level);
#if SQLNF_SIMD_HAVE_AVX2
  if (l == Level::kAvx2) {
    OrBytesAvx2(src, n, dst);
    return;
  }
#endif
#if SQLNF_SIMD_X86
  if (l >= Level::kSimd128) {
    OrBytesSse2(src, n, dst);
    return;
  }
#endif
  (void)l;
  OrBytesScalar(src, n, dst);
}

int64_t CountBytes(Level level, const uint8_t* bytes, int n) {
  const Level l = ClampToDetected(level);
#if SQLNF_SIMD_HAVE_AVX2
  if (l == Level::kAvx2) return CountBytesAvx2(bytes, n);
#endif
#if SQLNF_SIMD_X86
  if (l >= Level::kSimd128) return CountBytesSse2(bytes, n);
#endif
  (void)l;
  return CountBytesScalar(bytes, n);
}

int CompressStore(Level level, const uint8_t* match, int n, int base,
                  int* out) {
  const Level l = ClampToDetected(level);
#if SQLNF_SIMD_HAVE_AVX2
  if (l == Level::kAvx2) return CompressStoreAvx2(match, n, base, out);
#endif
  (void)l;
  return CompressStoreScalar(match, n, base, out);
}

void FnvMixCodes(Level level, const uint32_t* codes, int n, uint64_t* h) {
  const Level l = ClampToDetected(level);
#if SQLNF_SIMD_HAVE_AVX2
  if (l == Level::kAvx2) {
    FnvMixCodesAvx2(codes, n, h);
    return;
  }
#endif
#if SQLNF_SIMD_X86
  if (l >= Level::kSimd128) {
    FnvMixCodesSse2(codes, n, h);
    return;
  }
#endif
  (void)l;
  FnvMixCodesScalar(codes, n, h);
}

void FoldMask(Level level, const uint64_t* h, int n, uint64_t mask,
              uint32_t* out) {
  const Level l = ClampToDetected(level);
#if SQLNF_SIMD_HAVE_AVX2
  if (l == Level::kAvx2) {
    FoldMaskAvx2(h, n, mask, out);
    return;
  }
#endif
#if SQLNF_SIMD_X86
  if (l >= Level::kSimd128) {
    FoldMaskSse2(h, n, mask, out);
    return;
  }
#endif
  (void)l;
  FoldMaskScalar(h, n, mask, out);
}

void GatherCodes(Level level, const uint32_t* codes, const int* rows, int n,
                 uint32_t* out) {
  const Level l = ClampToDetected(level);
#if SQLNF_SIMD_HAVE_AVX2
  if (l == Level::kAvx2) {
    GatherCodesAvx2(codes, rows, n, out);
    return;
  }
#endif
  (void)l;
  GatherCodesScalar(codes, rows, n, out);
}

}  // namespace simd
}  // namespace sqlnf
