#include "sqlnf/core/value.h"

namespace sqlnf {

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "NULL";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kString:
      return str_;
  }
  return "";
}

}  // namespace sqlnf
