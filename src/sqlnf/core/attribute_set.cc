#include "sqlnf/core/attribute_set.h"

namespace sqlnf {

std::vector<AttributeId> AttributeSet::ToVector() const {
  std::vector<AttributeId> out;
  out.reserve(size());
  for (AttributeId id : *this) out.push_back(id);
  return out;
}

}  // namespace sqlnf
