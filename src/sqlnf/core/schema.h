// TableSchema: a table schema (T, T_S) — named attributes plus a
// null-free subschema (the SQL NOT NULL columns).
//
// Paper, Section 2: a table schema is a finite non-empty set T of
// attributes; an NFS (null-free subschema) T_S ⊆ T is the set of
// attributes declared NOT NULL. We pair the two, since the NFS largely
// determines the interaction of the constraints studied.

#ifndef SQLNF_CORE_SCHEMA_H_
#define SQLNF_CORE_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sqlnf/core/attribute_set.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// A table schema (T, T_S): ordered attribute names and the NOT NULL set.
///
/// Attribute ids are positions in the declaration order. Names must be
/// unique and non-empty; at most AttributeSet::kMaxAttributes (64)
/// attributes per schema.
class TableSchema {
 public:
  /// Builds a schema whose NFS is empty. Fails on duplicate/empty names
  /// or more than 64 attributes.
  static Result<TableSchema> Make(std::string name,
                                  std::vector<std::string> attributes);

  /// Builds a schema with the given NOT NULL attribute names. Every name
  /// in `not_null` must be one of `attributes`.
  static Result<TableSchema> Make(std::string name,
                                  std::vector<std::string> attributes,
                                  const std::vector<std::string>& not_null);

  /// Convenience for tests/examples: single-character attribute names
  /// taken from `attrs` (e.g. "oicp"), NFS from `not_null` (e.g. "ocp").
  /// Mirrors the paper's compact notation PURCHASE = oicp, T_S = ocp.
  static Result<TableSchema> MakeCompact(std::string name,
                                         std::string_view attrs,
                                         std::string_view not_null = "");

  const std::string& name() const { return name_; }
  int num_attributes() const { return static_cast<int>(names_.size()); }

  /// All attributes: the set T (always {0..n-1}).
  AttributeSet all() const { return AttributeSet::FullSet(num_attributes()); }

  /// The NFS T_S.
  const AttributeSet& nfs() const { return nfs_; }

  /// Replaces the NFS; `s` must be a subset of all().
  Status SetNfs(const AttributeSet& s);

  /// Name of attribute `id`. Requires 0 <= id < num_attributes().
  const std::string& attribute_name(AttributeId id) const {
    return names_[id];
  }

  /// Id of attribute `name`, or NotFound.
  Result<AttributeId> FindAttribute(std::string_view name) const;

  /// Resolves a list of names into a set; fails on the first unknown name.
  Result<AttributeSet> ResolveAll(
      const std::vector<std::string>& names) const;

  /// Compact rendering of a set, e.g. "{item,catalog}".
  std::string FormatSet(const AttributeSet& set) const;

  /// Builds the projected schema (X, X ∩ T_S) with attributes renumbered
  /// in ascending id order; `x` must be non-empty and ⊆ all().
  Result<TableSchema> Project(const AttributeSet& x,
                              std::string new_name) const;

  /// True when both schemata have the same attribute names (in order) and
  /// the same NFS. The schema name is ignored.
  bool SameStructure(const TableSchema& other) const;

 private:
  TableSchema() = default;

  std::string name_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttributeId> index_;
  AttributeSet nfs_;
};

}  // namespace sqlnf

#endif  // SQLNF_CORE_SCHEMA_H_
