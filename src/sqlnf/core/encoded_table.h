// EncodedTable: the shared columnar, dictionary-encoded view of a Table.
//
// Per column, every distinct non-null value is assigned a dense uint32
// code in first-occurrence order; ⊥ gets the reserved kNullCode. Codes
// are stored column-major, so the quadratic sweeps of discovery
// (agree sets, TANE partitions) and the grouped validators of
// engine/validate.h all run on flat integer vectors instead of hashing
// and comparing raw Values row by row. Because the dictionary is
// per-column, code equality is value equality and kNullCode is ⊥ — the
// paper's similarity notions (Section 2) become three integer compares:
//
//   equal      a == b                    (⊥ matches ⊥)
//   strong     a == b ∧ a ≠ kNullCode
//   weak       a == b ∨ a == kNullCode ∨ b == kNullCode
//
// The encoding is maintainable in place: AppendRow / UpdateCell /
// EraseRows keep it consistent across engine writes (the incremental
// enforcer holds one per stored table and never re-encodes), and
// LookupCode probes the dictionaries without mutating them, so a
// candidate row can be checked before it is accepted. Dictionaries only
// grow during forward execution — codes of deleted values are retired,
// not recycled — which keeps every historical code stable. The one
// sanctioned way dictionaries shrink is TrimDictionaries, the undo-log
// rollback that retires codes minted inside an aborted statement or
// transaction back to a recorded high-water mark.
//
// COPY-ON-WRITE COLUMNS. Columns are held by shared_ptr, and copying an
// EncodedTable is O(columns): the copy shares every column with the
// original. Mutating entry points detach (clone) a shared column before
// writing, so a copy taken as a SNAPSHOT stays bit-stable forever while
// the original keeps evolving — this is the versioned-column pointer
// swap behind the engine's snapshot reads (engine/catalog.h). A
// snapshot's columns are freed when the last EncodedTable referencing
// them is destroyed; no epoch bookkeeping is needed beyond the
// shared_ptr counts. Sharing/detaching is safe under the engine's
// single-writer discipline: concurrent readers of snapshot copies never
// mutate, and the single writer is the only thread that detaches.

#ifndef SQLNF_CORE_ENCODED_TABLE_H_
#define SQLNF_CORE_ENCODED_TABLE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sqlnf/core/attribute_set.h"
#include "sqlnf/core/schema.h"
#include "sqlnf/core/table.h"
#include "sqlnf/core/value.h"

namespace sqlnf {

class ThreadPool;

/// Column-coded view of a table: per column, one uint32 code per row.
class EncodedTable {
 public:
  /// Reserved code for ⊥. Never assigned to a value.
  static constexpr uint32_t kNullCode = 0xFFFFFFFFu;
  /// Returned by LookupCode for values absent from a dictionary; such a
  /// value differs from every encoded cell of the column. Never stored.
  static constexpr uint32_t kMissingCode = 0xFFFFFFFEu;

  /// Encodes every column of `table`.
  explicit EncodedTable(const Table& table);

  /// Encodes only `columns` (a validator needs just LHS ∪ RHS); the
  /// others stay unencoded and must not be queried.
  EncodedTable(const Table& table, const AttributeSet& columns);

  /// An empty encoding of `num_columns` columns (all encoded), to be
  /// grown row by row via AppendRow.
  explicit EncodedTable(int num_columns);

  /// Copies share every column (O(columns)); a later mutation of either
  /// side detaches just the touched column. This is the snapshot
  /// mechanism — see the header comment.
  EncodedTable(const EncodedTable&) = default;
  EncodedTable& operator=(const EncodedTable&) = default;
  EncodedTable(EncodedTable&&) = default;
  EncodedTable& operator=(EncodedTable&&) = default;

  int num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  /// Columns this encoding covers.
  const AttributeSet& encoded_columns() const { return encoded_; }

  uint32_t code(AttributeId col, int row) const {
    return columns_[col]->codes[row];
  }
  /// The whole code vector of one encoded column.
  const std::vector<uint32_t>& column(AttributeId col) const {
    return columns_[col]->codes;
  }

  /// Distinct non-null values ever encoded in `col` (codes are
  /// 0..dictionary_size-1; deleted values keep their retired codes).
  int dictionary_size(AttributeId col) const {
    return static_cast<int>(columns_[col]->values.size());
  }

  /// Every encoded column's dictionary_size, indexed by column — the
  /// high-water mark an undo log records before a statement or
  /// transaction mutates this encoding (unencoded columns report 0).
  std::vector<int> DictionarySizes() const;

  /// Retires every code minted past the recorded high-water marks:
  /// column by column, values with codes >= sizes[col] are dropped from
  /// the dictionary. The caller (the undo log) guarantees no live cell
  /// still carries a trimmed code — all rows written since the marks
  /// were taken have been rolled back first.
  void TrimDictionaries(const std::vector<int>& sizes);

  /// Code `value` would carry in `col`: kNullCode for ⊥, the assigned
  /// code if present, kMissingCode otherwise. Does not mutate.
  uint32_t LookupCode(AttributeId col, const Value& value) const;

  /// The value behind a code (⊥ for kNullCode). Requires a code
  /// previously assigned in `col`.
  const Value& DecodeCode(AttributeId col, uint32_t code) const;

  /// Encoded columns currently containing no ⊥ (the instance-inferred
  /// NFS). Maintained incrementally — O(columns) per call.
  AttributeSet NullFreeColumns() const;

  /// The maintained ⊥ count of one encoded column (what NullFreeColumns
  /// reads); exposed so invariant checks can compare it to a recount.
  int null_count(AttributeId col) const { return columns_[col]->null_count; }

  /// Appends one row (arity must match). O(columns) dictionary probes.
  void AppendRow(const Tuple& row);

  /// Re-encodes a single cell in place (the UPDATE write path).
  void UpdateCell(int row, AttributeId col, const Value& value);

  /// Removes the listed rows (ascending, deduplicated); surviving rows
  /// keep their relative order, ids shift down (the DELETE write path).
  void EraseRows(const std::vector<int>& rows);

  /// Inverse of EraseRows — the DELETE rollback. Re-inserts `tuples`
  /// so that tuples[k] lands at row id rows[k] of the RESTORED table
  /// (`rows` ascending, positions in post-restore numbering); survivors
  /// shift back up preserving order. Values are re-encoded, which
  /// reproduces their original codes because dictionaries never shrank
  /// in between.
  void UneraseRows(const std::vector<int>& rows,
                   const std::vector<Tuple>& tuples);

  /// Rebuilds the Table this encoding represents. Requires a full
  /// encoding and a schema of matching arity.
  Table Decode(const TableSchema& schema) const;

  // ---- Columnar executor support. The relational operators of
  // decomposition/encoded_ops.h and engine/relops.h are compositions of
  // these four primitives; none of them touches a Value — dictionaries
  // are copied or probed, never rebuilt.

  /// The listed rows (any order, duplicates allowed) gathered into a new
  /// encoding. Dictionaries are copied unchanged, so codes keep their
  /// meaning — this is how a selection vector materializes. With a pool
  /// the per-column gathers run as parallel tasks (identical result).
  EncodedTable GatherRows(const std::vector<int>& rows,
                          ThreadPool* pool = nullptr) const;

  /// The listed columns (any order, duplicates allowed) as a new, fully
  /// encoded table: column j of the result is column cols[j] here. Every
  /// listed column must be encoded. Columns are shared copy-on-write,
  /// so this is O(result columns). With a pool the (cheap) pointer
  /// copies still run as parallel tasks (identical result).
  EncodedTable GatherColumns(const std::vector<AttributeId>& cols,
                             ThreadPool* pool = nullptr) const;

  /// An allocated-but-unfilled gather target for two-phase (count/fill)
  /// writers: column j copies the dictionary of column sources[j].second
  /// of *sources[j].first and gets a code vector sized to `num_rows`
  /// with unspecified contents. The writer must store a code into every
  /// slot through mutable_codes() and then call RecountNulls() — until
  /// then row queries and null counts are meaningless.
  static EncodedTable AllocateTarget(
      const std::vector<std::pair<const EncodedTable*, AttributeId>>&
          sources,
      int num_rows);

  /// Raw writable code slots of one column, for AllocateTarget fill
  /// passes (distinct output windows may be written concurrently).
  /// Detaches the column if it is shared with a snapshot.
  uint32_t* mutable_codes(AttributeId col) {
    return Detach(col).codes.data();
  }

  /// Recomputes every column's ⊥ count from its codes — the seal step
  /// after direct mutable_codes() writes. Parallel over columns with a
  /// pool.
  void RecountNulls(ThreadPool* pool = nullptr);

  /// Side-by-side concatenation of two fully encoded tables with equal
  /// row counts: left's columns, then right's (shared copy-on-write).
  static EncodedTable Concat(const EncodedTable& left,
                             const EncodedTable& right);

  /// Ascending row ids of the first occurrence of each distinct row
  /// (codes compared across all encoded columns) — the dedup behind set
  /// projection I[X]. Code equality is value equality per column, so no
  /// Value is ever compared. Runs on a CSR hash index over the row
  /// codes: a row is emitted iff no smaller row in its bucket carries
  /// the same codes, a per-row test that parallelizes over morsels with
  /// a pool; the emitted ids are identical at every thread count.
  std::vector<int> DistinctRows(ThreadPool* pool = nullptr) const;

  /// The dictionary translation map from this encoding's codes in `col`
  /// into `other`'s code space for `other_col`: result[c] is the code
  /// `other` assigns to DecodeCode(col, c), or kMissingCode when the
  /// value is absent there. ⊥ needs no entry — kNullCode is shared by
  /// every encoding. O(dictionary size), independent of the row count.
  std::vector<uint32_t> TranslationTo(AttributeId col,
                                      const EncodedTable& other,
                                      AttributeId other_col) const;

  /// True when both encodings describe the same cell contents: same
  /// shape, same encoded columns, ⊥ in the same cells, and per column a
  /// bijection between live codes. Incremental maintenance and a
  /// from-scratch re-encode agree under this notion even though their
  /// dictionaries may order (or retain) values differently.
  bool EquivalentTo(const EncodedTable& other) const;

  /// True when both encodings are BIT-identical: same shape, same code
  /// in every cell, and per column the same dictionary (same values in
  /// the same code order). The abort-protocol tests use this — an
  /// aborted transaction must restore not just the logical contents but
  /// the exact codes and dictionary high-water marks.
  bool BitIdentical(const EncodedTable& other) const;

 private:
  struct ValueHasher {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct Column {
    std::vector<uint32_t> codes;  // one per row; kNullCode for ⊥
    std::vector<Value> values;    // code -> value
    std::unordered_map<Value, uint32_t, ValueHasher> dict;
    int null_count = 0;
  };

  /// The mutable column, cloned first if a snapshot still shares it
  /// (copy-on-write). Every mutating entry point goes through here.
  Column& Detach(AttributeId col);

  /// Encodes `value` into `col`, growing the dictionary on first sight.
  static uint32_t Encode(Column* col, const Value& value);

  int num_rows_ = 0;
  AttributeSet encoded_;
  std::vector<std::shared_ptr<Column>> columns_;
};

/// The three per-pair similarity tests on codes (see header comment).
inline bool CodesEqual(uint32_t a, uint32_t b) { return a == b; }
inline bool CodesStronglySimilar(uint32_t a, uint32_t b) {
  return a == b && a != EncodedTable::kNullCode;
}
inline bool CodesWeaklySimilar(uint32_t a, uint32_t b) {
  return a == b || a == EncodedTable::kNullCode ||
         b == EncodedTable::kNullCode;
}

}  // namespace sqlnf

#endif  // SQLNF_CORE_ENCODED_TABLE_H_
