// EncodedTable: the shared columnar, dictionary-encoded view of a Table.
//
// Per column, every distinct non-null value is assigned a dense uint32
// code in first-occurrence order; ⊥ gets the reserved kNullCode. Codes
// are stored column-major, so the quadratic sweeps of discovery
// (agree sets, TANE partitions) and the grouped validators of
// engine/validate.h all run on flat integer vectors instead of hashing
// and comparing raw Values row by row. Because the dictionary is
// per-column, code equality is value equality and kNullCode is ⊥ — the
// paper's similarity notions (Section 2) become three integer compares:
//
//   equal      a == b                    (⊥ matches ⊥)
//   strong     a == b ∧ a ≠ kNullCode
//   weak       a == b ∨ a == kNullCode ∨ b == kNullCode
//
// The encoding is maintainable in place: AppendRow / UpdateCell /
// EraseRows keep it consistent across engine writes (the incremental
// enforcer holds one per stored table and never re-encodes), and
// LookupCode probes the dictionaries without mutating them, so a
// candidate row can be checked before it is accepted. Dictionaries only
// grow during forward execution — codes of deleted values are retired,
// not recycled — which keeps every historical code stable. Two
// sanctioned operations shrink them: TrimDictionaries, the undo-log
// rollback that retires codes minted inside an aborted statement or
// transaction back to a recorded high-water mark, and
// CompactDictionaries, the explicit maintenance pass that drops dead
// entries and re-encodes the survivors order-preservingly (below).
//
// ORDER-AWARE DICTIONARIES. Codes are assigned in first-occurrence
// order, so code order says nothing about value order — but every
// column additionally maintains its ORDER INDEX: the permutation of
// codes in ascending value order (`sorted`) and its inverse
// (`rank`, one rank per code). An ordered predicate `col < v` /
// `BETWEEN` then reduces to a code-INTERVAL test: binary-search the
// operand into the sorted permutation once (LowerBoundRank /
// UpperBoundRank), and a row matches iff the rank of its code falls in
// the resulting half-open rank interval — one gather plus one unsigned
// compare per row, no Value ever touched (engine/predicate.h compiles
// whole predicate trees onto this). ⊥ never enters a dictionary, so ⊥
// is excluded from every ordered comparison by construction; values of
// different kinds compare by Value's total order (Int < Str).
// CompactDictionaries additionally CANONICALIZES a column: live values
// are re-encoded in ascending value order, so rank becomes the
// identity (DictionaryOrdered) and the interval test runs directly on
// raw codes with no gather — and two encodings with equal decoded
// contents compact to BIT-IDENTICAL encodings regardless of their
// mutation histories.
//
// COPY-ON-WRITE COLUMNS. Columns are held by shared_ptr, and copying an
// EncodedTable is O(columns): the copy shares every column with the
// original. Mutating entry points detach (clone) a shared column before
// writing, so a copy taken as a SNAPSHOT stays bit-stable forever while
// the original keeps evolving — this is the versioned-column pointer
// swap behind the engine's snapshot reads (engine/catalog.h). A
// snapshot's columns are freed when the last EncodedTable referencing
// them is destroyed; no epoch bookkeeping is needed beyond the
// shared_ptr counts. Sharing/detaching is safe under the engine's
// single-writer discipline: concurrent readers of snapshot copies never
// mutate, and the single writer is the only thread that detaches.

#ifndef SQLNF_CORE_ENCODED_TABLE_H_
#define SQLNF_CORE_ENCODED_TABLE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sqlnf/core/attribute_set.h"
#include "sqlnf/core/schema.h"
#include "sqlnf/core/table.h"
#include "sqlnf/core/value.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

class ThreadPool;

/// Column-coded view of a table: per column, one uint32 code per row.
class EncodedTable {
 public:
  /// Reserved code for ⊥. Never assigned to a value.
  static constexpr uint32_t kNullCode = 0xFFFFFFFFu;
  /// Returned by LookupCode for values absent from a dictionary; such a
  /// value differs from every encoded cell of the column. Never stored.
  static constexpr uint32_t kMissingCode = 0xFFFFFFFEu;
  /// The sentinel rank: CodeRanks(col) carries one extra slot at index
  /// dictionary_size holding kNoRank, so gathering with
  /// min(code, dictionary_size) maps kNullCode onto a rank outside
  /// every interval — ⊥ drops out of ordered comparisons branch-free.
  static constexpr uint32_t kNoRank = 0xFFFFFFFFu;

  /// Encodes every column of `table`.
  explicit EncodedTable(const Table& table);

  /// Encodes only `columns` (a validator needs just LHS ∪ RHS); the
  /// others stay unencoded and must not be queried.
  EncodedTable(const Table& table, const AttributeSet& columns);

  /// An empty encoding of `num_columns` columns (all encoded), to be
  /// grown row by row via AppendRow.
  explicit EncodedTable(int num_columns);

  /// Copies share every column (O(columns)); a later mutation of either
  /// side detaches just the touched column. This is the snapshot
  /// mechanism — see the header comment.
  EncodedTable(const EncodedTable&) = default;
  EncodedTable& operator=(const EncodedTable&) = default;
  EncodedTable(EncodedTable&&) = default;
  EncodedTable& operator=(EncodedTable&&) = default;

  int num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  /// Columns this encoding covers.
  const AttributeSet& encoded_columns() const { return encoded_; }

  uint32_t code(AttributeId col, int row) const {
    return columns_[col]->codes[row];
  }
  /// The whole code vector of one encoded column.
  const std::vector<uint32_t>& column(AttributeId col) const {
    return columns_[col]->codes;
  }

  /// Distinct non-null values ever encoded in `col` (codes are
  /// 0..dictionary_size-1; deleted values keep their retired codes).
  int dictionary_size(AttributeId col) const {
    return static_cast<int>(columns_[col]->values.size());
  }

  /// Every encoded column's dictionary_size, indexed by column — the
  /// high-water mark an undo log records before a statement or
  /// transaction mutates this encoding (unencoded columns report 0).
  std::vector<int> DictionarySizes() const;

  /// Retires every code minted past the recorded high-water marks:
  /// column by column, values with codes >= sizes[col] are dropped from
  /// the dictionary. The caller (the undo log) guarantees no live cell
  /// still carries a trimmed code — all rows written since the marks
  /// were taken have been rolled back first.
  void TrimDictionaries(const std::vector<int>& sizes);

  /// Code `value` would carry in `col`: kNullCode for ⊥, the assigned
  /// code if present, kMissingCode otherwise. Does not mutate.
  uint32_t LookupCode(AttributeId col, const Value& value) const;

  // ---- Order index (see the header comment). Ranks are positions in
  // ascending value order: rank r holds the (r+1)-smallest dictionary
  // value. Maintained across every dictionary mutation; an encoded
  // column always answers these in O(log dictionary) / O(1).

  /// Rank per code with one trailing kNoRank sentinel slot at index
  /// dictionary_size — the gather array behind encoded ordered
  /// predicates (index with min(code, dictionary_size)).
  const std::vector<uint32_t>& CodeRanks(AttributeId col) const {
    return columns_[col]->rank;
  }

  /// True when code order already equals value order (rank identity) —
  /// the post-compaction fast path: ordered predicates then test raw
  /// codes against the interval with no rank gather at all.
  bool DictionaryOrdered(AttributeId col) const {
    return columns_[col]->ordered;
  }

  /// Number of dictionary values of `col` strictly less than `v`
  /// under Value's total order — the lower endpoint of an ordered
  /// predicate's rank interval. ⊥ is never in a dictionary.
  uint32_t LowerBoundRank(AttributeId col, const Value& v) const;

  /// Number of dictionary values of `col` less than or equal to `v`.
  uint32_t UpperBoundRank(AttributeId col, const Value& v) const;

  /// Order-preserving dictionary compaction: per column, drops every
  /// value no longer referenced by any row (dead codes left behind by
  /// UPDATE re-encodes and DELETEs) and re-encodes the survivors in
  /// ascending value order — the canonical encoding. Afterwards
  /// DictionaryOrdered(col) holds everywhere, and two encodings with
  /// equal decoded contents are BitIdentical no matter how they got
  /// there. Codes change, so external state keyed on codes (the
  /// enforcer's constraint indexes) must be rebuilt by the caller; the
  /// engine's sanctioned entry point is Database::CompactTable, which
  /// is barred while a transaction's undo log holds pre-compaction
  /// codes. Returns the number of retired entries per column.
  std::vector<int> CompactDictionaries();

  /// Debug hook: re-derives every order-index invariant (sorted is a
  /// permutation of the codes in strictly ascending value order, rank
  /// is its inverse with the sentinel slot in place, DictionaryOrdered
  /// equals rank identity) and returns Internal on the first breach.
  Status CheckDictionaryOrder() const;

  /// The value behind a code (⊥ for kNullCode). Requires a code
  /// previously assigned in `col`.
  const Value& DecodeCode(AttributeId col, uint32_t code) const;

  /// Encoded columns currently containing no ⊥ (the instance-inferred
  /// NFS). Maintained incrementally — O(columns) per call.
  AttributeSet NullFreeColumns() const;

  /// The maintained ⊥ count of one encoded column (what NullFreeColumns
  /// reads); exposed so invariant checks can compare it to a recount.
  int null_count(AttributeId col) const { return columns_[col]->null_count; }

  /// Appends one row (arity must match). O(columns) dictionary probes.
  void AppendRow(const Tuple& row);

  /// Re-encodes a single cell in place (the UPDATE write path).
  void UpdateCell(int row, AttributeId col, const Value& value);

  /// Removes the listed rows (ascending, deduplicated); surviving rows
  /// keep their relative order, ids shift down (the DELETE write path).
  void EraseRows(const std::vector<int>& rows);

  /// Inverse of EraseRows — the DELETE rollback. Re-inserts `tuples`
  /// so that tuples[k] lands at row id rows[k] of the RESTORED table
  /// (`rows` ascending, positions in post-restore numbering); survivors
  /// shift back up preserving order. Values are re-encoded, which
  /// reproduces their original codes because dictionaries never shrank
  /// in between.
  void UneraseRows(const std::vector<int>& rows,
                   const std::vector<Tuple>& tuples);

  /// Rebuilds the Table this encoding represents. Requires a full
  /// encoding and a schema of matching arity.
  Table Decode(const TableSchema& schema) const;

  // ---- Columnar executor support. The relational operators of
  // decomposition/encoded_ops.h and engine/relops.h are compositions of
  // these four primitives; none of them touches a Value — dictionaries
  // are copied or probed, never rebuilt.

  /// The listed rows (any order, duplicates allowed) gathered into a new
  /// encoding. Dictionaries are copied unchanged, so codes keep their
  /// meaning — this is how a selection vector materializes. With a pool
  /// the per-column gathers run as parallel tasks (identical result).
  EncodedTable GatherRows(const std::vector<int>& rows,
                          ThreadPool* pool = nullptr) const;

  /// The listed columns (any order, duplicates allowed) as a new, fully
  /// encoded table: column j of the result is column cols[j] here. Every
  /// listed column must be encoded. Columns are shared copy-on-write,
  /// so this is O(result columns). With a pool the (cheap) pointer
  /// copies still run as parallel tasks (identical result).
  EncodedTable GatherColumns(const std::vector<AttributeId>& cols,
                             ThreadPool* pool = nullptr) const;

  /// An allocated-but-unfilled gather target for two-phase (count/fill)
  /// writers: column j copies the dictionary of column sources[j].second
  /// of *sources[j].first and gets a code vector sized to `num_rows`
  /// with unspecified contents. The writer must store a code into every
  /// slot through mutable_codes() and then call RecountNulls() — until
  /// then row queries and null counts are meaningless.
  static EncodedTable AllocateTarget(
      const std::vector<std::pair<const EncodedTable*, AttributeId>>&
          sources,
      int num_rows);

  /// Raw writable code slots of one column, for AllocateTarget fill
  /// passes (distinct output windows may be written concurrently).
  /// Detaches the column if it is shared with a snapshot.
  uint32_t* mutable_codes(AttributeId col) {
    return Detach(col).codes.data();
  }

  /// Recomputes every column's ⊥ count from its codes — the seal step
  /// after direct mutable_codes() writes. Parallel over columns with a
  /// pool.
  void RecountNulls(ThreadPool* pool = nullptr);

  /// Side-by-side concatenation of two fully encoded tables with equal
  /// row counts: left's columns, then right's (shared copy-on-write).
  static EncodedTable Concat(const EncodedTable& left,
                             const EncodedTable& right);

  /// Ascending row ids of the first occurrence of each distinct row
  /// (codes compared across all encoded columns) — the dedup behind set
  /// projection I[X]. Code equality is value equality per column, so no
  /// Value is ever compared. Runs on a CSR hash index over the row
  /// codes: a row is emitted iff no smaller row in its bucket carries
  /// the same codes, a per-row test that parallelizes over morsels with
  /// a pool; the emitted ids are identical at every thread count.
  std::vector<int> DistinctRows(ThreadPool* pool = nullptr) const;

  /// The dictionary translation map from this encoding's codes in `col`
  /// into `other`'s code space for `other_col`: result[c] is the code
  /// `other` assigns to DecodeCode(col, c), or kMissingCode when the
  /// value is absent there. ⊥ needs no entry — kNullCode is shared by
  /// every encoding. O(dictionary size), independent of the row count.
  std::vector<uint32_t> TranslationTo(AttributeId col,
                                      const EncodedTable& other,
                                      AttributeId other_col) const;

  /// True when both encodings describe the same cell contents: same
  /// shape, same encoded columns, ⊥ in the same cells, and per column a
  /// bijection between live codes. Incremental maintenance and a
  /// from-scratch re-encode agree under this notion even though their
  /// dictionaries may order (or retain) values differently.
  bool EquivalentTo(const EncodedTable& other) const;

  /// True when both encodings are BIT-identical: same shape, same code
  /// in every cell, and per column the same dictionary (same values in
  /// the same code order). The abort-protocol tests use this — an
  /// aborted transaction must restore not just the logical contents but
  /// the exact codes and dictionary high-water marks.
  bool BitIdentical(const EncodedTable& other) const;

 private:
  struct ValueHasher {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct Column {
    std::vector<uint32_t> codes;  // one per row; kNullCode for ⊥
    std::vector<Value> values;    // code -> value
    std::unordered_map<Value, uint32_t, ValueHasher> dict;
    int null_count = 0;
    // Order index, derived from `values` and maintained by every
    // dictionary mutation: codes in ascending value order, the inverse
    // rank per code (with the kNoRank sentinel at index values.size()),
    // and whether code order equals value order.
    std::vector<uint32_t> sorted;
    std::vector<uint32_t> rank = {kNoRank};
    bool ordered = true;
  };

  /// The mutable column, cloned first if a snapshot still shares it
  /// (copy-on-write). Every mutating entry point goes through here.
  Column& Detach(AttributeId col);

  /// Encodes `value` into `col`, growing the dictionary — and its
  /// order index — on first sight.
  static uint32_t Encode(Column* col, const Value& value);

  /// Dictionary growth without order maintenance, for bulk encodes
  /// that RebuildOrder() once at the end instead of paying the
  /// incremental insertion per distinct value.
  static uint32_t EncodeUnordered(Column* col, const Value& value);

  /// Splices freshly minted `code` into the order index (O(dictionary)
  /// worst case; O(1) when values arrive in ascending order).
  static void InsertOrdered(Column* col, uint32_t code);

  /// Recomputes the order index from `values` (O(d log d)).
  static void RebuildOrder(Column* col);

  /// Copies the dictionary state (values, hash map, order index) of
  /// `src` into `dst` — the shared step of GatherRows/AllocateTarget.
  static void CopyDictionary(const Column& src, Column* dst);

  int num_rows_ = 0;
  AttributeSet encoded_;
  std::vector<std::shared_ptr<Column>> columns_;
};

/// The three per-pair similarity tests on codes (see header comment).
inline bool CodesEqual(uint32_t a, uint32_t b) { return a == b; }
inline bool CodesStronglySimilar(uint32_t a, uint32_t b) {
  return a == b && a != EncodedTable::kNullCode;
}
inline bool CodesWeaklySimilar(uint32_t a, uint32_t b) {
  return a == b || a == EncodedTable::kNullCode ||
         b == EncodedTable::kNullCode;
}

}  // namespace sqlnf

#endif  // SQLNF_CORE_ENCODED_TABLE_H_
