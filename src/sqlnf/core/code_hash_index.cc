#include "sqlnf/core/code_hash_index.h"

#include <algorithm>

#include "sqlnf/core/simd_kernels.h"
#include "sqlnf/util/fnv.h"
#include "sqlnf/util/parallel.h"

namespace sqlnf {
namespace {

// Rows per bucket-id tile in the count/fill passes: big enough to
// amortize the kernel dispatch, small enough that the uint32 bucket-id
// scratch stays in L1 alongside the histogram.
constexpr int kHashTile = 512;

}  // namespace

uint64_t CodeHashIndex::HashKey(
    const std::vector<const std::vector<uint32_t>*>& keys, int row) {
  uint64_t h = kFnv64OffsetBasis;
  for (const std::vector<uint32_t>* col : keys) {
    h = FnvMix(h, (*col)[row]);
  }
  return h;
}

void CodeHashIndex::HashRows(
    const std::vector<const std::vector<uint32_t>*>& keys, int begin,
    int end, uint64_t* out) {
  const int n = end - begin;
  if (n <= 0) return;
  std::fill(out, out + n, kFnv64OffsetBasis);
  // Column-major mixing: every row folds its columns in list order,
  // exactly the HashKey sequence, just batched across rows.
  const simd::Level level = simd::ActiveLevel();
  for (const std::vector<uint32_t>* col : keys) {
    simd::FnvMixCodes(level, col->data() + begin, n, out);
  }
}

CodeHashIndex::CodeHashIndex(
    const std::vector<const std::vector<uint32_t>*>& keys, int rows,
    ThreadPool* pool) {
  uint64_t buckets = 1;
  while (buckets < static_cast<uint64_t>(rows)) buckets <<= 1;
  mask_ = buckets - 1;
  hashes_.resize(rows);
  starts_.assign(buckets + 1, 0);
  row_ids_.resize(rows);
  if (rows == 0) return;

  // One histogram per chunk keeps the fill pass synchronization-free;
  // chunks = threads bounds the transient memory at threads × buckets.
  const int chunks = pool == nullptr ? 1 : pool->num_threads();
  const int per_chunk = (rows + chunks - 1) / chunks;
  std::vector<uint32_t> cursors(static_cast<size_t>(chunks) * buckets, 0);
  auto run = [&](const std::function<void(int)>& task) {
    if (pool == nullptr) {
      task(0);
    } else {
      pool->RunTasks(chunks, task);
    }
  };

  // Count: hash every row once (batched column-major mixing), then
  // histogram per (chunk, bucket) by tiling the bucket-id fold through
  // simd::FoldMask — the scatter increment itself stays scalar.
  const simd::Level level = simd::ActiveLevel();
  run([&](int c) {
    uint32_t* counts = cursors.data() + static_cast<size_t>(c) * buckets;
    const int b = c * per_chunk;
    const int e = std::min(rows, b + per_chunk);
    if (b >= e) return;
    HashRows(keys, b, e, hashes_.data() + b);
    uint32_t ids[kHashTile];
    for (int at = b; at < e; at += kHashTile) {
      const int len = std::min(kHashTile, e - at);
      simd::FoldMask(level, hashes_.data() + at, len, mask_, ids);
      for (int i = 0; i < len; ++i) ++counts[ids[i]];
    }
  });

  // Exclusive prefix sum, bucket-major with chunks in order inside each
  // bucket: chunk c's cursor for bucket b starts where chunk c−1's rows
  // for b end, so ascending chunks (= ascending row ranges) land in
  // ascending slots and every bucket lists its rows in ascending order.
  uint32_t total = 0;
  for (uint64_t b = 0; b < buckets; ++b) {
    starts_[b] = total;
    for (int c = 0; c < chunks; ++c) {
      uint32_t* cursor = cursors.data() + static_cast<size_t>(c) * buckets + b;
      const uint32_t count = *cursor;
      *cursor = total;
      total += count;
    }
  }
  starts_[buckets] = total;

  // Fill: scatter row ids through the per-chunk cursors, re-deriving
  // bucket ids tile-wise from the cached hashes.
  run([&](int c) {
    uint32_t* cursor = cursors.data() + static_cast<size_t>(c) * buckets;
    const int b = c * per_chunk;
    const int e = std::min(rows, b + per_chunk);
    uint32_t ids[kHashTile];
    for (int at = b; at < e; at += kHashTile) {
      const int len = std::min(kHashTile, e - at);
      simd::FoldMask(level, hashes_.data() + at, len, mask_, ids);
      for (int i = 0; i < len; ++i) {
        row_ids_[cursor[ids[i]]++] = at + i;
      }
    }
  });
}

}  // namespace sqlnf
