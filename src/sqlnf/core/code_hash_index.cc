#include "sqlnf/core/code_hash_index.h"

#include <algorithm>

#include "sqlnf/util/fnv.h"
#include "sqlnf/util/parallel.h"

namespace sqlnf {

uint64_t CodeHashIndex::HashKey(
    const std::vector<const std::vector<uint32_t>*>& keys, int row) {
  uint64_t h = kFnv64OffsetBasis;
  for (const std::vector<uint32_t>* col : keys) {
    h = FnvMix(h, (*col)[row]);
  }
  return h;
}

CodeHashIndex::CodeHashIndex(
    const std::vector<const std::vector<uint32_t>*>& keys, int rows,
    ThreadPool* pool) {
  uint64_t buckets = 1;
  while (buckets < static_cast<uint64_t>(rows)) buckets <<= 1;
  mask_ = buckets - 1;
  hashes_.resize(rows);
  starts_.assign(buckets + 1, 0);
  row_ids_.resize(rows);
  if (rows == 0) return;

  // One histogram per chunk keeps the fill pass synchronization-free;
  // chunks = threads bounds the transient memory at threads × buckets.
  const int chunks = pool == nullptr ? 1 : pool->num_threads();
  const int per_chunk = (rows + chunks - 1) / chunks;
  std::vector<uint32_t> cursors(static_cast<size_t>(chunks) * buckets, 0);
  auto run = [&](const std::function<void(int)>& task) {
    if (pool == nullptr) {
      task(0);
    } else {
      pool->RunTasks(chunks, task);
    }
  };

  // Count: hash every row once, histogram per (chunk, bucket).
  run([&](int c) {
    uint32_t* counts = cursors.data() + static_cast<size_t>(c) * buckets;
    const int b = c * per_chunk;
    const int e = std::min(rows, b + per_chunk);
    for (int row = b; row < e; ++row) {
      const uint64_t h = HashKey(keys, row);
      hashes_[row] = h;
      ++counts[Fold(h) & mask_];
    }
  });

  // Exclusive prefix sum, bucket-major with chunks in order inside each
  // bucket: chunk c's cursor for bucket b starts where chunk c−1's rows
  // for b end, so ascending chunks (= ascending row ranges) land in
  // ascending slots and every bucket lists its rows in ascending order.
  uint32_t total = 0;
  for (uint64_t b = 0; b < buckets; ++b) {
    starts_[b] = total;
    for (int c = 0; c < chunks; ++c) {
      uint32_t* cursor = cursors.data() + static_cast<size_t>(c) * buckets + b;
      const uint32_t count = *cursor;
      *cursor = total;
      total += count;
    }
  }
  starts_[buckets] = total;

  // Fill: scatter row ids through the per-chunk cursors.
  run([&](int c) {
    uint32_t* cursor = cursors.data() + static_cast<size_t>(c) * buckets;
    const int b = c * per_chunk;
    const int e = std::min(rows, b + per_chunk);
    for (int row = b; row < e; ++row) {
      row_ids_[cursor[Fold(hashes_[row]) & mask_]++] = row;
    }
  });
}

}  // namespace sqlnf
