#include "sqlnf/core/table.h"

#include <algorithm>
#include <map>

#include "sqlnf/util/text_table.h"

namespace sqlnf {

Tuple Tuple::Restrict(const AttributeSet& x) const {
  std::vector<Value> out;
  out.reserve(x.size());
  for (AttributeId id : x) out.push_back(values_[id]);
  return Tuple(std::move(out));
}

bool Tuple::IsTotal(const AttributeSet& x) const {
  for (AttributeId id : x) {
    if (values_[id].is_null()) return false;
  }
  return true;
}

bool Tuple::EqualOn(const Tuple& other, const AttributeSet& x) const {
  for (AttributeId id : x) {
    if (!(values_[id] == other.values_[id])) return false;
  }
  return true;
}

bool Tuple::operator<(const Tuple& other) const {
  return std::lexicographical_compare(values_.begin(), values_.end(),
                                      other.values_.begin(),
                                      other.values_.end());
}

size_t Tuple::Hash() const {
  size_t h = 0;
  for (const Value& v : values_) {
    h = h * 1315423911u + v.Hash();
  }
  return h;
}

Status Table::AddRow(Tuple row) {
  if (row.size() != num_columns()) {
    return Status::Invalid("row arity " + std::to_string(row.size()) +
                           " does not match schema arity " +
                           std::to_string(num_columns()));
  }
  if (null_counts_valid_) {
    for (AttributeId a = 0; a < num_columns(); ++a) {
      if (row[a].is_null()) ++null_counts_[a];
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

void Table::SetCell(int row, AttributeId col, Value value) {
  Value& cell = rows_[row][col];
  if (null_counts_valid_) {
    null_counts_[col] += value.is_null() - cell.is_null();
  }
  cell = std::move(value);
}

Status Table::AddRowText(const std::vector<std::string>& cells) {
  std::vector<Value> values;
  values.reserve(cells.size());
  for (const std::string& c : cells) {
    values.push_back(c == "NULL" ? Value::Null() : Value::Str(c));
  }
  return AddRow(Tuple(std::move(values)));
}

Status Table::CheckNfs() const {
  for (int i = 0; i < num_rows(); ++i) {
    for (AttributeId a : schema_.nfs()) {
      if (rows_[i][a].is_null()) {
        return Status::FailedPrecondition(
            "NULL in NOT NULL column '" + schema_.attribute_name(a) +
            "' at row " + std::to_string(i));
      }
    }
  }
  return Status::OK();
}

std::vector<Value> Table::ColumnValues(AttributeId a) const {
  std::vector<Value> out;
  for (const Tuple& t : rows_) {
    if (t[a].is_null()) continue;
    if (std::find(out.begin(), out.end(), t[a]) == out.end()) {
      out.push_back(t[a]);
    }
  }
  return out;
}

void Table::RecountNulls() const {
  null_counts_.assign(num_columns(), 0);
  for (const Tuple& t : rows_) {
    for (AttributeId a = 0; a < num_columns(); ++a) {
      if (t[a].is_null()) ++null_counts_[a];
    }
  }
  null_counts_valid_ = true;
}

AttributeSet Table::NullFreeColumns() const {
  if (!null_counts_valid_) RecountNulls();
  AttributeSet out;
  for (AttributeId a = 0; a < num_columns(); ++a) {
    if (null_counts_[a] == 0) out.Add(a);
  }
  return out;
}

int Table::CountNulls(AttributeId a) const {
  if (!null_counts_valid_) RecountNulls();
  return null_counts_[a];
}

bool Table::SameMultiset(const Table& other) const {
  if (!schema_.SameStructure(other.schema_)) return false;
  if (num_rows() != other.num_rows()) return false;
  std::map<Tuple, int> counts;
  for (const Tuple& t : rows_) ++counts[t];
  for (const Tuple& t : other.rows_) {
    auto it = counts.find(t);
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

std::string Table::ToString() const {
  TextTable tt;
  std::vector<std::string> header;
  for (int i = 0; i < num_columns(); ++i) {
    std::string h = schema_.attribute_name(i);
    if (schema_.nfs().Contains(i)) h += "*";  // NOT NULL marker
    header.push_back(std::move(h));
  }
  tt.SetHeader(std::move(header));
  for (const Tuple& t : rows_) {
    std::vector<std::string> row;
    row.reserve(t.size());
    for (const Value& v : t.values()) row.push_back(v.ToString());
    tt.AddRow(std::move(row));
  }
  return schema_.name() + " (" + std::to_string(num_rows()) + " rows)\n" +
         tt.ToString();
}

}  // namespace sqlnf
