#include "sqlnf/core/similarity.h"

namespace sqlnf {

bool WeaklySimilar(const Tuple& t, const Tuple& u, const AttributeSet& x) {
  for (AttributeId a : x) {
    const Value& tv = t[a];
    const Value& uv = u[a];
    if (tv.is_null() || uv.is_null()) continue;
    if (!(tv == uv)) return false;
  }
  return true;
}

bool StronglySimilar(const Tuple& t, const Tuple& u, const AttributeSet& x) {
  for (AttributeId a : x) {
    const Value& tv = t[a];
    const Value& uv = u[a];
    if (tv.is_null() || uv.is_null()) return false;
    if (!(tv == uv)) return false;
  }
  return true;
}

}  // namespace sqlnf
