#include "sqlnf/core/schema.h"

#include <utility>

namespace sqlnf {

Result<TableSchema> TableSchema::Make(std::string name,
                                      std::vector<std::string> attributes) {
  if (attributes.empty()) {
    return Status::Invalid("table schema must have at least one attribute");
  }
  if (attributes.size() > AttributeSet::kMaxAttributes) {
    return Status::OutOfRange("schemas are limited to 64 attributes, got " +
                              std::to_string(attributes.size()));
  }
  TableSchema schema;
  schema.name_ = std::move(name);
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i].empty()) {
      return Status::Invalid("attribute names must be non-empty");
    }
    auto [it, inserted] =
        schema.index_.emplace(attributes[i], static_cast<AttributeId>(i));
    if (!inserted) {
      return Status::Invalid("duplicate attribute name: " + attributes[i]);
    }
  }
  schema.names_ = std::move(attributes);
  return schema;
}

Result<TableSchema> TableSchema::Make(
    std::string name, std::vector<std::string> attributes,
    const std::vector<std::string>& not_null) {
  SQLNF_ASSIGN_OR_RETURN(TableSchema schema,
                         Make(std::move(name), std::move(attributes)));
  SQLNF_ASSIGN_OR_RETURN(AttributeSet nfs, schema.ResolveAll(not_null));
  schema.nfs_ = nfs;
  return schema;
}

Result<TableSchema> TableSchema::MakeCompact(std::string name,
                                             std::string_view attrs,
                                             std::string_view not_null) {
  std::vector<std::string> names;
  names.reserve(attrs.size());
  for (char c : attrs) names.emplace_back(1, c);
  std::vector<std::string> nn;
  nn.reserve(not_null.size());
  for (char c : not_null) nn.emplace_back(1, c);
  return Make(std::move(name), std::move(names), nn);
}

Status TableSchema::SetNfs(const AttributeSet& s) {
  if (!s.IsSubsetOf(all())) {
    return Status::Invalid("NFS must be a subset of the schema attributes");
  }
  nfs_ = s;
  return Status::OK();
}

Result<AttributeId> TableSchema::FindAttribute(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return Status::NotFound("no attribute named '" + std::string(name) +
                            "' in schema " + name_);
  }
  return it->second;
}

Result<AttributeSet> TableSchema::ResolveAll(
    const std::vector<std::string>& names) const {
  AttributeSet set;
  for (const std::string& n : names) {
    SQLNF_ASSIGN_OR_RETURN(AttributeId id, FindAttribute(n));
    set.Add(id);
  }
  return set;
}

std::string TableSchema::FormatSet(const AttributeSet& set) const {
  std::string out = "{";
  bool first = true;
  for (AttributeId id : set) {
    if (!first) out += ",";
    first = false;
    out += names_[id];
  }
  out += "}";
  return out;
}

Result<TableSchema> TableSchema::Project(const AttributeSet& x,
                                         std::string new_name) const {
  if (!x.IsSubsetOf(all())) {
    return Status::Invalid("projection attributes outside schema");
  }
  if (x.empty()) {
    return Status::Invalid("cannot project onto the empty attribute set");
  }
  std::vector<std::string> names;
  std::vector<std::string> not_null;
  for (AttributeId id : x) {
    names.push_back(names_[id]);
    if (nfs_.Contains(id)) not_null.push_back(names_[id]);
  }
  return Make(std::move(new_name), std::move(names), not_null);
}

bool TableSchema::SameStructure(const TableSchema& other) const {
  return names_ == other.names_ && nfs_ == other.nfs_;
}

}  // namespace sqlnf
