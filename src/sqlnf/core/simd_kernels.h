// Explicit SIMD kernels over uint32 code arrays and uint8 match bytes —
// the vector layer under the engine's four hottest loops:
//
//   * CompiledPredicate::ApplyAtom   EqCode / NeCode / CodeInterval /
//                                    RankInterval / ByteTable / OrBytes
//   * ParallelEmit count/fill        CountBytes / CompressStore
//   * CodeHashIndex build & probe    FnvMixCodes / FoldMask
//   * validator radix bucketing      GatherCodes
//
// Each kernel ships in up to three compile-time ISA variants — a scalar
// reference (auto-vectorization disabled: it is the differential
// oracle), a portable 128-bit path (SSE2 on x86-64, NEON on AArch64),
// and AVX2 — selected by the explicit `Level` argument. Call sites pass
// ActiveLevel(), which resolves runtime CPU detection capped by the
// SQLNF_SIMD_LEVEL environment override; tests pass levels directly to
// sweep them. Every dispatcher clamps the requested level to what the
// CPU actually supports, so asking for AVX2 on an SSE2-only machine
// degrades instead of faulting.
//
// THE BIT-IDENTITY CONTRACT: for identical inputs, every kernel
// produces byte-for-byte identical output at every level. ⊥ semantics
// ride on the same code/rank tricks as the scalar loops they replace
// (kNullCode wrapping outside intervals, the min(code, d) gather clamp
// onto the sentinel slot), so the dispatch level can never change a
// query result — which is what makes the SQLNF_SIMD_LEVEL override and
// the forced-scalar CI leg safe, and what the predicate-fuzzer and
// executor differential harnesses enforce by sweeping levels.
//
// This header is deliberately ISA-agnostic: no intrinsics, no feature
// macros (the sqlnf_lint `simd-confinement` rule confines those to
// util/simd.h + core/simd_kernels.cc).

#ifndef SQLNF_CORE_SIMD_KERNELS_H_
#define SQLNF_CORE_SIMD_KERNELS_H_

#include <cstdint>

namespace sqlnf {
namespace simd {

/// Dispatch levels, ordered: higher levels may only be selected when
/// the CPU supports them. kSimd128 is SSE2 on x86-64 and NEON on
/// AArch64 (the portable 128-bit path); on other targets it aliases
/// the scalar reference.
enum class Level : uint8_t {
  kScalar = 0,
  kSimd128 = 1,
  kAvx2 = 2,
};

/// Canonical lowercase name ("scalar", "simd128", "avx2").
const char* LevelName(Level level);

/// Parses "scalar", "sse2"/"neon"/"simd128", or "avx2" (the spellings
/// SQLNF_SIMD_LEVEL accepts). Returns false on anything else.
bool ParseLevel(const char* name, Level* out);

/// The best level this CPU (and build) supports — compile-time ISA
/// availability ∧ runtime CPU detection, ignoring the environment.
Level DetectedLevel();

/// The level production call sites use: the test override if one is
/// set, else DetectedLevel() capped by the SQLNF_SIMD_LEVEL
/// environment variable (read once per process). Never exceeds
/// DetectedLevel().
Level ActiveLevel();

/// Pins ActiveLevel() for tests (clamped to DetectedLevel()); sweep
/// harnesses use this to run every level in one process.
void SetLevelForTesting(Level level);

/// Removes the test override.
void ClearLevelForTesting();

/// How a predicate kernel combines with the bytes already in `out`:
/// the first atom of a conjunction assigns, later atoms AND — so no
/// fill-with-ones pass precedes a conjunction's scan loops.
enum class Store : uint8_t {
  kAssign,
  kAnd,
};

/// ByteTable gathers 4 bytes at a time on the AVX2 path, so membership
/// tables must be allocated with this many zero pad bytes past the
/// last live slot (index d).
constexpr int kByteTablePad = 3;

/// out[i] ?= (codes[i] == want), i in [0, n).
void EqCode(Level level, const uint32_t* codes, int n, uint32_t want,
            Store store, uint8_t* out);

/// out[i] ?= (codes[i] != want).
void NeCode(Level level, const uint32_t* codes, int n, uint32_t want,
            Store store, uint8_t* out);

/// out[i] ?= (codes[i] - lo < span), all unsigned: the ordered-
/// dictionary interval test (kNullCode wraps far above any span, so ⊥
/// drops out branch-free).
void CodeInterval(Level level, const uint32_t* codes, int n, uint32_t lo,
                  uint32_t span, Store store, uint8_t* out);

/// out[i] ?= (rank[min(codes[i], d)] - lo < span): the rank-gather
/// interval test. `rank` must carry d + 1 entries — slot d is the
/// kNoRank sentinel kNullCode clamps onto.
void RankInterval(Level level, const uint32_t* codes, int n,
                  const uint32_t* rank, uint32_t d, uint32_t lo,
                  uint32_t span, Store store, uint8_t* out);

/// out[i] ?= (table[min(codes[i], d)] != 0): byte-table membership
/// (the IN kernel). `table` holds d + 1 live slots (slot d is ⊥'s
/// membership) followed by kByteTablePad zero bytes.
void ByteTable(Level level, const uint32_t* codes, int n,
               const uint8_t* table, uint32_t d, Store store, uint8_t* out);

/// dst[i] |= src[i]: the disjunct merge of EvalBlock.
void OrBytes(Level level, const uint8_t* src, int n, uint8_t* dst);

/// Sum of `bytes[0..n)` — the count phase over 0/1 match bytes.
int64_t CountBytes(Level level, const uint8_t* bytes, int n);

/// Appends base + i to `out` for every i with match[i] != 0, ascending;
/// returns how many were written (the fill phase's compress-store).
/// `out` must have room for CountBytes(match, n) entries.
int CompressStore(Level level, const uint8_t* match, int n, int base,
                  int* out);

/// h[i] = (h[i] ^ codes[i]) * kFnv64Prime — one FNV-1a column fold
/// over a row range. Chaining per key column reproduces
/// CodeHashIndex::HashKey exactly (same mix order per row).
void FnvMixCodes(Level level, const uint32_t* codes, int n, uint64_t* h);

/// out[i] = uint32((h[i] ^ (h[i] >> 32)) & mask): the bucket-id fold
/// of CodeHashIndex, batched for the build/probe histogram passes.
/// Requires mask < 2^32 (bucket counts are int-sized).
void FoldMask(Level level, const uint64_t* h, int n, uint64_t mask,
              uint32_t* out);

/// out[i] = codes[rows[i]]: the row-list gather of radix bucketing.
void GatherCodes(Level level, const uint32_t* codes, const int* rows,
                 int n, uint32_t* out);

}  // namespace simd
}  // namespace sqlnf

#endif  // SQLNF_CORE_SIMD_KERNELS_H_
