// AttributeSet: a set of attribute positions within one table schema.
//
// The paper works with finite table schemata T ⊆ 𝔄 (max 22 attributes in
// its evaluation). We represent a set of attributes of a fixed schema as
// a 64-bit bitset over the attribute positions 0..|T|-1, which makes the
// set algebra used throughout (closures, similarity, hitting sets) a few
// machine instructions. Schemas with more than 64 attributes are rejected
// at construction (see TableSchema).

#ifndef SQLNF_CORE_ATTRIBUTE_SET_H_
#define SQLNF_CORE_ATTRIBUTE_SET_H_

#include <bit>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace sqlnf {

/// Index of an attribute within its TableSchema (0-based).
using AttributeId = int;

/// Immutable-value set of attribute ids; supports the usual set algebra.
class AttributeSet {
 public:
  static constexpr int kMaxAttributes = 64;

  /// The empty set.
  constexpr AttributeSet() : bits_(0) {}

  /// The set {ids...}. Ids must be in [0, 64).
  AttributeSet(std::initializer_list<AttributeId> ids) : bits_(0) {
    for (AttributeId id : ids) Add(id);
  }

  /// The set {0, 1, ..., n-1}; `n` must be in [0, 64]. A negative `n`
  /// yields the empty set (asserts in debug builds) — shifting by it
  /// would be undefined behavior.
  static AttributeSet FullSet(int n) {
    assert(n >= 0 && n <= kMaxAttributes);
    AttributeSet s;
    s.bits_ = n >= 64 ? ~uint64_t{0}
              : n <= 0 ? 0
                       : ((uint64_t{1} << n) - 1);
    return s;
  }

  /// Singleton {id}. Precondition: id ∈ [0, 64).
  static AttributeSet Single(AttributeId id) {
    AttributeSet s;
    s.Add(id);
    return s;
  }

  static AttributeSet FromBits(uint64_t bits) {
    AttributeSet s;
    s.bits_ = bits;
    return s;
  }

  // Precondition for Add/Remove/Contains: id ∈ [0, kMaxAttributes).
  // Shifting a uint64 by a negative or >= 64 amount is undefined
  // behavior, so out-of-range ids assert in debug builds; release
  // builds must never pass them (TableSchema rejects wider schemas at
  // construction).
  void Add(AttributeId id) {
    assert(id >= 0 && id < kMaxAttributes);
    bits_ |= uint64_t{1} << id;
  }
  void Remove(AttributeId id) {
    assert(id >= 0 && id < kMaxAttributes);
    bits_ &= ~(uint64_t{1} << id);
  }
  bool Contains(AttributeId id) const {
    assert(id >= 0 && id < kMaxAttributes);
    return (bits_ >> id) & uint64_t{1};
  }

  bool empty() const { return bits_ == 0; }
  int size() const { return std::popcount(bits_); }
  uint64_t bits() const { return bits_; }

  /// X ⊆ Y.
  bool IsSubsetOf(const AttributeSet& other) const {
    return (bits_ & ~other.bits_) == 0;
  }
  /// X ⊊ Y.
  bool IsProperSubsetOf(const AttributeSet& other) const {
    return IsSubsetOf(other) && bits_ != other.bits_;
  }
  bool Intersects(const AttributeSet& other) const {
    return (bits_ & other.bits_) != 0;
  }

  AttributeSet Union(const AttributeSet& other) const {
    return FromBits(bits_ | other.bits_);
  }
  AttributeSet Intersect(const AttributeSet& other) const {
    return FromBits(bits_ & other.bits_);
  }
  /// X − Y.
  AttributeSet Difference(const AttributeSet& other) const {
    return FromBits(bits_ & ~other.bits_);
  }

  friend AttributeSet operator|(AttributeSet a, AttributeSet b) {
    return a.Union(b);
  }
  friend AttributeSet operator&(AttributeSet a, AttributeSet b) {
    return a.Intersect(b);
  }
  friend AttributeSet operator-(AttributeSet a, AttributeSet b) {
    return a.Difference(b);
  }

  bool operator==(const AttributeSet& other) const = default;

  /// Total order (by bit pattern) for use in std::map / sorting.
  bool operator<(const AttributeSet& other) const {
    return bits_ < other.bits_;
  }

  /// Ascending list of member ids.
  std::vector<AttributeId> ToVector() const;

  /// Iterates members in ascending order without materializing a vector:
  /// `for (AttributeId a : set) ...`.
  class Iterator {
   public:
    explicit Iterator(uint64_t bits) : bits_(bits) {}
    AttributeId operator*() const { return std::countr_zero(bits_); }
    Iterator& operator++() {
      bits_ &= bits_ - 1;  // clear lowest set bit
      return *this;
    }
    bool operator!=(const Iterator& other) const {
      return bits_ != other.bits_;
    }

   private:
    uint64_t bits_;
  };
  Iterator begin() const { return Iterator(bits_); }
  Iterator end() const { return Iterator(0); }

 private:
  uint64_t bits_;
};

}  // namespace sqlnf

#endif  // SQLNF_CORE_ATTRIBUTE_SET_H_
