// CodeHashIndex: a flat CSR-layout hash index over code-column keys —
// the build side of the morsel-driven equality join and the grouping
// structure behind parallel distinct-row emission.
//
// Instead of an unordered_map<hash, vector<row>> (one heap allocation
// per bucket, pointer-chasing probes, serial build), the index is three
// contiguous arrays:
//
//   hashes_[row]       FNV-1a over the row's key codes
//   starts_[b .. b+1]  the CSR window of bucket b in row_ids_
//   row_ids_[...]      row ids, grouped by bucket, ASCENDING per bucket
//
// The bucket array is a power of two sized to hold the rows at load
// factor <= 1, and the build is the two-phase count -> exclusive prefix
// sum -> fill pass: each build chunk histograms its rows per bucket,
// the serial prefix sum fixes every (chunk, bucket) write cursor, and
// the fill pass scatters row ids with no synchronization. Because the
// cursors are ordered chunk-major within each bucket and chunks cover
// ascending row ranges, every bucket lists its rows in ascending order
// regardless of the thread count — which is what makes the join's
// probe output bit-identical to serial.
//
// Hash collisions are NOT resolved here: a bucket may mix genuinely
// different keys, and callers confirm equality on the key codes (the
// same contract the previous unordered_map index had).

#ifndef SQLNF_CORE_CODE_HASH_INDEX_H_
#define SQLNF_CORE_CODE_HASH_INDEX_H_

#include <cstdint>
#include <vector>

namespace sqlnf {

class ThreadPool;

class CodeHashIndex {
 public:
  /// Indexes `rows` rows keyed on the listed code columns (each of size
  /// `rows`; the list may be empty, giving one all-rows bucket). With a
  /// pool the count and fill passes run chunk-parallel; `nullptr`
  /// builds serially. Either way the layout is identical.
  CodeHashIndex(const std::vector<const std::vector<uint32_t>*>& keys,
                int rows, ThreadPool* pool);

  /// FNV-1a over one row's codes in the key columns — the exact mix
  /// probe sides must use.
  static uint64_t HashKey(
      const std::vector<const std::vector<uint32_t>*>& keys, int row);

  /// Batch form of HashKey over rows [begin, end): out[i] receives the
  /// hash of row begin+i. Mixes column-major through the SIMD kernels
  /// (simd::FnvMixCodes) — the per-row mix order is identical to
  /// HashKey, so the results are bit-equal. Probe sides tile their
  /// rows through this instead of hashing row-at-a-time.
  static void HashRows(const std::vector<const std::vector<uint32_t>*>& keys,
                       int begin, int end, uint64_t* out);

  /// The build-side hash of an indexed row (cached from the build).
  uint64_t row_hash(int row) const { return hashes_[row]; }

  int num_buckets() const { return static_cast<int>(mask_ + 1); }

  /// The rows whose key hashed into `hash`'s bucket, ascending. May
  /// contain rows with different keys (collisions) — confirm on codes.
  struct Range {
    const int* begin;
    const int* end;
  };
  Range Bucket(uint64_t hash) const {
    const uint64_t b = Fold(hash) & mask_;
    return {row_ids_.data() + starts_[b], row_ids_.data() + starts_[b + 1]};
  }

 private:
  /// Folds the high half into the low bits so the power-of-two mask
  /// sees the whole 64-bit mix.
  static uint64_t Fold(uint64_t h) { return h ^ (h >> 32); }

  uint64_t mask_ = 0;
  std::vector<uint64_t> hashes_;   // per row
  std::vector<uint32_t> starts_;   // per bucket, CSR offsets (+1 slot)
  std::vector<int> row_ids_;       // all rows, bucket-grouped
};

}  // namespace sqlnf

#endif  // SQLNF_CORE_CODE_HASH_INDEX_H_
