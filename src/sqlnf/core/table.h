// Tuple and Table: SQL table instances.
//
// Paper, Section 2: a table I over T is a finite MULTISET of tuples —
// duplicate tuples are permitted (a deliberate departure from the
// relational model). We therefore store rows in a vector and never
// deduplicate implicitly; set-projection is an explicit operation
// (see decomposition/decomposition.h).

#ifndef SQLNF_CORE_TABLE_H_
#define SQLNF_CORE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sqlnf/core/attribute_set.h"
#include "sqlnf/core/schema.h"
#include "sqlnf/core/value.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// One row: a function from attribute ids to values, stored positionally.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  int size() const { return static_cast<int>(values_.size()); }
  const Value& operator[](AttributeId id) const { return values_[id]; }
  Value& operator[](AttributeId id) { return values_[id]; }
  const std::vector<Value>& values() const { return values_; }

  /// t[X]: the restriction of this tuple to X, values in ascending
  /// attribute order.
  Tuple Restrict(const AttributeSet& x) const;

  /// True when t[A] ≠ ⊥ for all A ∈ X ("X-total", paper §2).
  bool IsTotal(const AttributeSet& x) const;

  /// Exact equality on X: t[A] = t'[A] for all A ∈ X (⊥ matches ⊥ only).
  bool EqualOn(const Tuple& other, const AttributeSet& x) const;

  bool operator==(const Tuple& other) const = default;
  bool operator<(const Tuple& other) const;

  size_t Hash() const;

 private:
  std::vector<Value> values_;
};

/// A table instance: a multiset of tuples over a TableSchema.
class Table {
 public:
  explicit Table(TableSchema schema)
      : schema_(std::move(schema)), null_counts_(schema_.num_attributes(), 0) {}

  const TableSchema& schema() const { return schema_; }
  TableSchema* mutable_schema() { return &schema_; }

  int num_rows() const { return static_cast<int>(rows_.size()); }
  int num_columns() const { return schema_.num_attributes(); }
  /// rows × columns, the "cells" measure used in Section 7.
  int64_t num_cells() const {
    return static_cast<int64_t>(num_rows()) * num_columns();
  }

  const Tuple& row(int i) const { return rows_[i]; }
  /// Mutable access to a row invalidates the per-column ⊥-count cache
  /// (the caller may write cells we never see); it is lazily recomputed.
  /// Prefer SetCell, which keeps the cache exact.
  Tuple* mutable_row(int i) {
    null_counts_valid_ = false;
    return &rows_[i];
  }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Writes one cell in place, adjusting the ⊥-count cache from the old
  /// and new value — the UPDATE write path stays O(1) per cell instead
  /// of forcing a full-table rescan like mutable_row().
  void SetCell(int row, AttributeId col, Value value);

  /// Pre-allocates row storage (e.g. a join reserving its output from
  /// bucket sizes before emitting).
  void ReserveRows(int n) { rows_.reserve(n); }

  /// Appends a row; its arity must equal the schema's. This checks arity
  /// only — use CheckNfs() (or constraints/satisfies.h) to validate
  /// NOT NULL compliance.
  Status AddRow(Tuple row);

  /// Convenience: appends a row given cell texts; "NULL" (exactly)
  /// becomes ⊥, anything else a string value.
  Status AddRowText(const std::vector<std::string>& cells);

  /// Verifies the instance is T_S-total (satisfies the NFS).
  Status CheckNfs() const;

  /// Distinct non-null values occurring in column `a`, in row order of
  /// first occurrence.
  std::vector<Value> ColumnValues(AttributeId a) const;

  /// Number of ⊥ cells in column `a`.
  int CountNulls(AttributeId a) const;

  /// Columns with no ⊥ anywhere in the instance. Backed by per-column ⊥
  /// counts maintained by AddRow/SetCell — O(columns) for the
  /// validators' hot path — and recomputed lazily after mutable_row()
  /// hands out write access.
  AttributeSet NullFreeColumns() const;

  /// True when the two tables have the same schema structure and equal
  /// row multisets (row order ignored, multiplicities respected).
  bool SameMultiset(const Table& other) const;

  /// ASCII rendering (header + rows) for examples/benches.
  std::string ToString() const;

 private:
  void RecountNulls() const;

  TableSchema schema_;
  std::vector<Tuple> rows_;
  // Per-column ⊥ counts behind NullFreeColumns()/CountNulls; see there.
  mutable std::vector<int> null_counts_;
  mutable bool null_counts_valid_ = true;
};

}  // namespace sqlnf

#endif  // SQLNF_CORE_TABLE_H_
