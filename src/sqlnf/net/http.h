// HTTP/1.1 message framing for the service layer — parsing requests
// from a byte stream and serializing responses, with no sockets in
// sight (server.cc owns the I/O; this file is pure text processing and
// unit-testable without a network).
//
// The reader is incremental: feed it whatever recv() returned — one
// byte or a megabyte — and it reports kNeedMore until a full request
// (head + Content-Length body) has arrived. Hostile and malformed
// inputs turn into an HTTP status, never undefined behavior:
//
//   * request line not `METHOD SP target SP HTTP/1.x`      → 400
//   * header line without ':' / empty name / too many      → 400
//   * head larger than Limits::max_head_bytes              → 431
//   * body larger than Limits::max_body_bytes              → 413
//   * Content-Length not a plain decimal                   → 400
//   * Transfer-Encoding (chunked bodies are out of scope)  → 501
//
// Keep-alive: after ConsumeRequest() the reader retains any pipelined
// leftover bytes and is ready for the next request on the same
// connection.

#ifndef SQLNF_NET_HTTP_H_
#define SQLNF_NET_HTTP_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

namespace sqlnf {

/// One parsed request. Header names are lower-cased; values have
/// surrounding whitespace stripped.
struct HttpRequest {
  std::string method;  // upper-case in practice, kept verbatim
  std::string target;  // as sent, e.g. "/query?x=1"
  std::string path;    // target up to the first '?'
  std::map<std::string, std::string> headers;
  std::string body;

  /// False when the client asked for `Connection: close`.
  bool keep_alive = true;
};

/// Status line + standard headers + body. `content_type` applies only
/// when `body` is non-empty.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  bool close = false;  // sets `Connection: close`
};

/// Reason phrase for the status codes this server emits ("OK",
/// "Bad Request", ...); "Unknown" for anything else.
std::string_view HttpReasonPhrase(int status);

/// Full wire form: status line, Content-Length, optional Content-Type
/// and Connection headers, CRLF CRLF, body.
std::string SerializeHttpResponse(const HttpResponse& response);

/// Framing limits, enforced while parsing (before any handler runs).
struct HttpReaderLimits {
  size_t max_head_bytes = 16 * 1024;
  size_t max_body_bytes = 4 * 1024 * 1024;
  size_t max_headers = 64;
};

/// Incremental request parser over a byte stream.
class HttpRequestReader {
 public:
  using Limits = HttpReaderLimits;

  enum class State {
    kNeedMore,  // feed more bytes
    kReady,     // request() is complete; ConsumeRequest() to proceed
    kError,     // error_status()/error_message() describe the reject
  };

  explicit HttpRequestReader(Limits limits = {}) : limits_(limits) {}

  /// Appends bytes from the connection and advances the parse.
  /// Idempotent on kReady/kError (extra bytes are buffered untouched).
  State Feed(std::string_view bytes);

  State state() const { return state_; }

  /// Valid in kReady only.
  const HttpRequest& request() const { return request_; }

  /// Finishes the current request and re-arms for the next one on the
  /// same connection, reparsing any pipelined bytes already buffered.
  /// Valid in kReady only.
  State ConsumeRequest();

  /// Valid in kError only.
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

 private:
  State TryParse();
  State FailWith(int status, std::string message);

  Limits limits_;
  State state_ = State::kNeedMore;
  std::string buffer_;
  size_t consumed_ = 0;  // bytes of buffer_ owned by the ready request
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_message_;
};

}  // namespace sqlnf

#endif  // SQLNF_NET_HTTP_H_
