// A minimal blocking HTTP/1.1 server: one accept thread feeding a
// bounded queue of connections, N worker threads draining it. Each
// worker owns one connection at a time and serves keep-alive requests
// on it sequentially through an HttpRequestReader (net/http.h), so the
// handler sees complete, validated requests only.
//
// Concurrency contract: the handler runs on worker threads, many at
// once — it must be thread-safe but needs no capability annotations.
// The service layer (net/service.h) satisfies this by construction:
// its per-request Session routes reads through immutable snapshots and
// serializes writes behind SessionRegistry::writer_mu() internally, so
// the writer capability never crosses the std::function boundary
// (which Clang TSA cannot see through anyway — DESIGN.md §8).
//
// Shutdown is cooperative and clock-free: Stop() shuts down the listen
// socket (unblocking accept) and every in-flight connection socket
// (unblocking recv), then joins all threads. No timeouts, no polling.

#ifndef SQLNF_NET_SERVER_H_
#define SQLNF_NET_SERVER_H_

#include <deque>
#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "sqlnf/net/http.h"
#include "sqlnf/util/mutex.h"
#include "sqlnf/util/status.h"
#include "sqlnf/util/thread_annotations.h"

namespace sqlnf {

struct HttpServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port
  /// (read it back from port() after Start()).
  int port = 0;
  /// Worker threads serving connections.
  int workers = 4;
  /// listen(2) backlog.
  int backlog = 64;
  /// Request framing limits, enforced before the handler runs.
  HttpRequestReader::Limits limits;
};

class HttpServer {
 public:
  /// `handler` is invoked concurrently from worker threads.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(Handler handler, HttpServerOptions options = {})
      : handler_(std::move(handler)), options_(options) {}
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the accept + worker threads.
  Status Start();

  /// The bound port (after a successful Start()).
  int port() const { return port_; }

  /// Stops accepting, aborts in-flight connections, joins all threads.
  /// Idempotent; also called by the destructor.
  void Stop();

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  Handler handler_;
  HttpServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar queue_cv_;
  std::deque<int> pending_ SQLNF_GUARDED_BY(mu_);  // accepted, unserved
  std::set<int> active_ SQLNF_GUARDED_BY(mu_);     // being served
  bool stopping_ SQLNF_GUARDED_BY(mu_) = false;
  bool started_ = false;  // Start()/Stop() are same-thread
};

}  // namespace sqlnf

#endif  // SQLNF_NET_SERVER_H_
