#include "sqlnf/net/http.h"

#include <algorithm>
#include <cctype>
#include <utility>

namespace sqlnf {
namespace {

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view StripSpaces(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// One header/request line: `text` up to (excluding) the line break,
/// tolerating both CRLF and bare LF. Returns false when no full line
/// is buffered yet.
bool NextLine(std::string_view head, size_t* pos, std::string_view* line) {
  const size_t nl = head.find('\n', *pos);
  if (nl == std::string_view::npos) return false;
  size_t end = nl;
  if (end > *pos && head[end - 1] == '\r') --end;
  *line = head.substr(*pos, end - *pos);
  *pos = nl + 1;
  return true;
}

}  // namespace

std::string_view HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    default: return "Unknown";
  }
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " ";
  out += HttpReasonPhrase(response.status);
  out += "\r\nContent-Length: " + std::to_string(response.body.size());
  if (!response.body.empty()) {
    out += "\r\nContent-Type: " + response.content_type;
  }
  if (response.close) out += "\r\nConnection: close";
  out += "\r\n\r\n";
  out += response.body;
  return out;
}

HttpRequestReader::State HttpRequestReader::FailWith(int status,
                                                     std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_message_ = std::move(message);
  return state_;
}

HttpRequestReader::State HttpRequestReader::Feed(std::string_view bytes) {
  if (state_ == State::kReady || state_ == State::kError) {
    buffer_.append(bytes);  // pipelined bytes wait for ConsumeRequest
    return state_;
  }
  buffer_.append(bytes);
  return TryParse();
}

HttpRequestReader::State HttpRequestReader::ConsumeRequest() {
  buffer_.erase(0, consumed_);
  consumed_ = 0;
  request_ = HttpRequest();
  state_ = State::kNeedMore;
  return TryParse();
}

HttpRequestReader::State HttpRequestReader::TryParse() {
  // Head = everything through the blank line. Tolerate LF-only framing
  // (telnet-style hand testing) alongside the canonical CRLF CRLF.
  size_t head_end = buffer_.find("\r\n\r\n");
  size_t body_start;
  if (head_end != std::string::npos) {
    body_start = head_end + 4;
  } else {
    head_end = buffer_.find("\n\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        return FailWith(431, "request head exceeds " +
                                 std::to_string(limits_.max_head_bytes) +
                                 " bytes");
      }
      return state_;  // kNeedMore
    }
    body_start = head_end + 2;
  }
  if (head_end > limits_.max_head_bytes) {
    return FailWith(431, "request head exceeds " +
                             std::to_string(limits_.max_head_bytes) +
                             " bytes");
  }

  const std::string_view head(buffer_.data(), body_start);
  size_t pos = 0;
  std::string_view line;
  if (!NextLine(head, &pos, &line) || line.empty()) {
    return FailWith(400, "empty request line");
  }

  // METHOD SP target SP HTTP/1.x — exactly three space-separated parts.
  const size_t sp1 = line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return FailWith(400, "malformed request line");
  }
  const std::string_view version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return FailWith(400, "unsupported protocol version");
  }
  HttpRequest req;
  req.method = std::string(line.substr(0, sp1));
  req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  req.path = req.target.substr(0, req.target.find('?'));
  req.keep_alive = version == "HTTP/1.1";

  size_t header_count = 0;
  while (NextLine(head, &pos, &line)) {
    if (line.empty()) break;
    if (++header_count > limits_.max_headers) {
      return FailWith(400, "too many header fields");
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return FailWith(400, "malformed header line");
    }
    std::string name = AsciiLower(StripSpaces(line.substr(0, colon)));
    if (name.find(' ') != std::string::npos ||
        name.find('\t') != std::string::npos) {
      return FailWith(400, "whitespace in header name");
    }
    req.headers[std::move(name)] =
        std::string(StripSpaces(line.substr(colon + 1)));
  }

  if (req.headers.count("transfer-encoding") > 0) {
    return FailWith(501, "transfer-encoding is not supported");
  }

  size_t content_length = 0;
  if (auto it = req.headers.find("content-length");
      it != req.headers.end()) {
    const std::string& v = it->second;
    if (v.empty() ||
        !std::all_of(v.begin(), v.end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        }) ||
        v.size() > 12) {
      return FailWith(400, "malformed content-length");
    }
    content_length = static_cast<size_t>(std::stoll(v));
    if (content_length > limits_.max_body_bytes) {
      return FailWith(413, "request body exceeds " +
                               std::to_string(limits_.max_body_bytes) +
                               " bytes");
    }
  }

  if (auto it = req.headers.find("connection"); it != req.headers.end()) {
    const std::string token = AsciiLower(it->second);
    if (token == "close") req.keep_alive = false;
    if (token == "keep-alive") req.keep_alive = true;
  }

  if (buffer_.size() - body_start < content_length) {
    return state_;  // kNeedMore: body still in flight
  }
  req.body = buffer_.substr(body_start, content_length);
  consumed_ = body_start + content_length;
  request_ = std::move(req);
  state_ = State::kReady;
  return state_;
}

}  // namespace sqlnf
