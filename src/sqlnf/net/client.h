// A deliberately small blocking HTTP/1.1 client for the loopback
// tests and the server benchmark. One HttpConnection = one TCP
// connection; requests on it are sequential and reuse the connection
// (keep-alive) until the server closes it. Not a general client — no
// TLS, no redirects, no chunked bodies — just enough to exercise the
// server in net/server.h, and the reason raw sockets stay confined to
// src/sqlnf/net/ (tools/lint/sqlnf_lint.py enforces the boundary).

#ifndef SQLNF_NET_CLIENT_H_
#define SQLNF_NET_CLIENT_H_

#include <map>
#include <string>

#include "sqlnf/util/status.h"

namespace sqlnf {

/// A parsed response. Header names are lower-cased.
struct HttpClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};

class HttpConnection {
 public:
  /// Connects to 127.0.0.1:port.
  static Result<HttpConnection> Open(int port);

  HttpConnection(HttpConnection&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  HttpConnection& operator=(HttpConnection&& other) noexcept;
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;
  ~HttpConnection();

  Result<HttpClientResponse> Get(const std::string& path);
  Result<HttpClientResponse> Post(const std::string& path,
                                  const std::string& body);

  /// Sends raw bytes verbatim and reads one response — for tests that
  /// need malformed or hand-framed requests.
  Result<HttpClientResponse> RoundTrip(const std::string& raw_request);

 private:
  explicit HttpConnection(int fd) : fd_(fd) {}

  Result<HttpClientResponse> ReadResponse();

  int fd_ = -1;
};

}  // namespace sqlnf

#endif  // SQLNF_NET_CLIENT_H_
