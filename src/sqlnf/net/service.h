// The sqlnf HTTP API: JSON endpoints over the session layer
// (engine/session.h). One SqlnfService fronts one SessionRegistry; the
// handler is thread-safe because each request gets its own Session and
// sessions synchronize through the registry by construction.
//
// Endpoints (all bodies JSON):
//
//   GET  /health
//     → {"ok":true,"tables":N,"cache_hits":N,"cache_misses":N}
//   POST /query      {"sql":"SELECT ..."}
//     → engine/result.h RenderJson: {"ok":..,["error":..,]"statements":[..]}
//   POST /validate   {"table":"t","constraints":"x ->w y; c<k>"[,"threads":N]}
//     → ValidationReport::RenderJson
//   POST /discover   {"table":"t"[,"max_rows":N][,"threads":N]}
//     → DiscoveryReport::RenderJson
//   POST /normalize  {"table":"t"[,"threads":N]}
//     → NormalizationOutcome::RenderJson
//
// Errors are machine-readable and uniform:
//   {"ok":false,"error":{"code":"NotFound","message":...,
//                        "statement_index":N,"byte_offset":N,
//                        "line":N,"column":N}}
// (position fields present only when known), with the HTTP status
// derived from the StatusCode — see HttpStatusFor.

#ifndef SQLNF_NET_SERVICE_H_
#define SQLNF_NET_SERVICE_H_

#include <string>

#include "sqlnf/engine/session.h"
#include "sqlnf/net/http.h"
#include "sqlnf/util/json.h"

namespace sqlnf {

/// HTTP status for an engine StatusCode (kParseError/kInvalidArgument
/// → 400, kNotFound → 404, kFailedPrecondition → 409, kOutOfRange →
/// 422, rest → 500).
int HttpStatusFor(StatusCode code);

/// `{"ok":false,"error":{...}}` for a failure, with whatever position
/// fields the detail carries.
std::string RenderErrorJson(const ErrorDetail& detail);

struct SqlnfServiceOptions {
  /// Default kernel thread count when a request does not say.
  int threads = 1;
  /// Cap on per-request "threads" (a client must not fork-bomb the
  /// server).
  int max_threads = 16;
};

class SqlnfService {
 public:
  using Options = SqlnfServiceOptions;

  /// `registry` must outlive the service.
  explicit SqlnfService(SessionRegistry* registry, Options options = {})
      : registry_(registry), options_(options) {}

  /// The HttpServer handler: safe to call from many threads at once.
  HttpResponse Handle(const HttpRequest& request);

 private:
  HttpResponse Health();
  HttpResponse Query(const JsonValue& body);
  HttpResponse Validate(const JsonValue& body);
  HttpResponse Discover(const JsonValue& body);
  HttpResponse Normalize(const JsonValue& body);

  Session MakeSession(const JsonValue& body);

  SessionRegistry* registry_;
  Options options_;
};

}  // namespace sqlnf

#endif  // SQLNF_NET_SERVICE_H_
