#include "sqlnf/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <utility>

namespace sqlnf {
namespace {

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string AsciiLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

}  // namespace

Result<HttpConnection> HttpConnection::Open(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket() failed, errno=" +
                           std::to_string(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int connect_errno = errno;
    ::close(fd);
    return Status::IoError("connect(port=" + std::to_string(port) +
                           ") failed, errno=" +
                           std::to_string(connect_errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return HttpConnection(fd);
}

HttpConnection& HttpConnection::operator=(HttpConnection&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

HttpConnection::~HttpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

Result<HttpClientResponse> HttpConnection::Get(const std::string& path) {
  return RoundTrip("GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

Result<HttpClientResponse> HttpConnection::Post(const std::string& path,
                                                const std::string& body) {
  return RoundTrip("POST " + path +
                   " HTTP/1.1\r\nHost: localhost\r\n"
                   "Content-Type: application/json\r\n"
                   "Content-Length: " +
                   std::to_string(body.size()) + "\r\n\r\n" + body);
}

Result<HttpClientResponse> HttpConnection::RoundTrip(
    const std::string& raw_request) {
  if (fd_ < 0) return Status::FailedPrecondition("connection is closed");
  if (!SendAll(fd_, raw_request)) {
    return Status::IoError("send() failed, errno=" +
                           std::to_string(errno));
  }
  return ReadResponse();
}

Result<HttpClientResponse> HttpConnection::ReadResponse() {
  std::string buffer;
  char chunk[8192];
  size_t head_end = std::string::npos;
  while (head_end == std::string::npos) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IoError("connection closed before response head");
    }
    buffer.append(chunk, static_cast<size_t>(n));
    head_end = buffer.find("\r\n\r\n");
  }
  const size_t body_start = head_end + 4;

  HttpClientResponse response;
  const size_t line_end = buffer.find("\r\n");
  const std::string status_line = buffer.substr(0, line_end);
  // "HTTP/1.1 200 OK" — the status code is the second token.
  const size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos || sp1 + 4 > status_line.size()) {
    return Status::ParseError("malformed status line: " + status_line);
  }
  response.status = 0;
  for (size_t i = sp1 + 1;
       i < status_line.size() &&
       std::isdigit(static_cast<unsigned char>(status_line[i])) != 0;
       ++i) {
    response.status = response.status * 10 + (status_line[i] - '0');
  }
  if (response.status < 100 || response.status > 599) {
    return Status::ParseError("malformed status code in: " + status_line);
  }

  size_t pos = line_end + 2;
  while (pos < head_end) {
    const size_t eol = buffer.find("\r\n", pos);
    const std::string line = buffer.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = AsciiLower(line.substr(0, colon));
    size_t vbegin = colon + 1;
    while (vbegin < line.size() && line[vbegin] == ' ') ++vbegin;
    response.headers[std::move(name)] = line.substr(vbegin);
  }

  size_t content_length = 0;
  if (auto it = response.headers.find("content-length");
      it != response.headers.end()) {
    content_length = static_cast<size_t>(std::stoll(it->second));
  }
  while (buffer.size() - body_start < content_length) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IoError("connection closed mid-body");
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  response.body = buffer.substr(body_start, content_length);
  return response;
}

}  // namespace sqlnf
