#include "sqlnf/net/service.h"

#include <algorithm>
#include <utility>

namespace sqlnf {
namespace {

HttpResponse JsonOk(std::string body) {
  HttpResponse r;
  r.body = std::move(body);
  return r;
}

HttpResponse JsonError(int http_status, const ErrorDetail& detail) {
  HttpResponse r;
  r.status = http_status;
  r.body = RenderErrorJson(detail);
  return r;
}

HttpResponse StatusError(const Status& status) {
  ErrorDetail detail;
  detail.code = status.code();
  detail.message = status.message();
  return JsonError(HttpStatusFor(status.code()), detail);
}

HttpResponse SimpleError(int http_status, StatusCode code,
                         std::string message) {
  ErrorDetail detail;
  detail.code = code;
  detail.message = std::move(message);
  return JsonError(http_status, detail);
}

}  // namespace

int HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kOutOfRange:
      return 422;
    case StatusCode::kIoError:
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

std::string RenderErrorJson(const ErrorDetail& detail) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(false);
  w.Key("error");
  w.BeginObject();
  w.Key("code");
  w.String(StatusCodeToString(detail.code));
  w.Key("message");
  w.String(detail.message);
  if (detail.statement_index >= 0) {
    w.Key("statement_index");
    w.Int(detail.statement_index);
  }
  if (detail.byte_offset >= 0) {
    w.Key("byte_offset");
    w.Int(detail.byte_offset);
  }
  if (detail.line > 0) {
    w.Key("line");
    w.Int(detail.line);
    w.Key("column");
    w.Int(detail.column);
  }
  w.EndObject();
  w.EndObject();
  return std::move(w).Take();
}

HttpResponse SqlnfService::Handle(const HttpRequest& request) {
  if (request.path == "/health") {
    if (request.method != "GET") {
      return SimpleError(405, StatusCode::kInvalidArgument,
                         "/health is GET only");
    }
    return Health();
  }

  const bool known_post =
      request.path == "/query" || request.path == "/validate" ||
      request.path == "/discover" || request.path == "/normalize";
  if (!known_post) {
    return SimpleError(404, StatusCode::kNotFound,
                       "no such endpoint: " + request.path);
  }
  if (request.method != "POST") {
    return SimpleError(405, StatusCode::kInvalidArgument,
                       request.path + " is POST only");
  }
  Result<JsonValue> body = ParseJson(request.body);
  if (!body.ok()) {
    return SimpleError(400, StatusCode::kParseError,
                       "request body is not valid JSON: " +
                           body.status().message());
  }
  if (!body->is_object()) {
    return SimpleError(400, StatusCode::kInvalidArgument,
                       "request body must be a JSON object");
  }
  if (request.path == "/query") return Query(*body);
  if (request.path == "/validate") return Validate(*body);
  if (request.path == "/discover") return Discover(*body);
  return Normalize(*body);
}

Session SqlnfService::MakeSession(const JsonValue& body) {
  SessionOptions options;
  const int64_t requested = body.GetInt("threads", options_.threads);
  options.threads = static_cast<int>(
      std::clamp<int64_t>(requested, 1, options_.max_threads));
  return Session(registry_, options);
}

HttpResponse SqlnfService::Health() {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("tables");
  w.Int(static_cast<int64_t>(registry_->db()->SnapshotAll().size()));
  w.Key("cache_hits");
  w.Int(registry_->cache_hits());
  w.Key("cache_misses");
  w.Int(registry_->cache_misses());
  w.EndObject();
  return JsonOk(std::move(w).Take());
}

HttpResponse SqlnfService::Query(const JsonValue& body) {
  Result<std::string> sql = body.GetString("sql");
  if (!sql.ok()) return StatusError(sql.status());
  Session session = MakeSession(body);
  const ResultSet rs = session.Execute(*sql);
  HttpResponse r;
  r.status = rs.ok() ? 200 : HttpStatusFor(rs.status.code());
  r.body = RenderJson(rs);
  return r;
}

HttpResponse SqlnfService::Validate(const JsonValue& body) {
  Result<std::string> table = body.GetString("table");
  if (!table.ok()) return StatusError(table.status());
  Result<std::string> constraints = body.GetString("constraints");
  if (!constraints.ok()) return StatusError(constraints.status());
  Session session = MakeSession(body);
  Result<ValidationReport> report = session.Validate(*table, *constraints);
  if (!report.ok()) return StatusError(report.status());
  return JsonOk(report->RenderJson());
}

HttpResponse SqlnfService::Discover(const JsonValue& body) {
  Result<std::string> table = body.GetString("table");
  if (!table.ok()) return StatusError(table.status());
  Session session = MakeSession(body);
  const int max_rows = static_cast<int>(body.GetInt("max_rows", 0));
  Result<DiscoveryReport> report = session.Discover(*table, max_rows);
  if (!report.ok()) return StatusError(report.status());
  return JsonOk(report->RenderJson());
}

HttpResponse SqlnfService::Normalize(const JsonValue& body) {
  Result<std::string> table = body.GetString("table");
  if (!table.ok()) return StatusError(table.status());
  Session session = MakeSession(body);
  Result<NormalizationOutcome> outcome = session.Normalize(*table);
  if (!outcome.ok()) return StatusError(outcome.status());
  return JsonOk(outcome->RenderJson());
}

}  // namespace sqlnf
