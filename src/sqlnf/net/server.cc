#include "sqlnf/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <string>

#include "sqlnf/util/json.h"

namespace sqlnf {
namespace {

/// send(2) until the buffer is drained or the peer is gone.
bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Status HttpServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket() failed, errno=" +
                           std::to_string(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int bind_errno = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind(port=" + std::to_string(options_.port) +
                           ") failed, errno=" + std::to_string(bind_errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    const int name_errno = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("getsockname() failed, errno=" +
                           std::to_string(name_errno));
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const int listen_errno = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen() failed, errno=" +
                           std::to_string(listen_errno));
  }

  started_ = true;
  const int workers = options_.workers > 0 ? options_.workers : 1;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!started_) return;
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Unblock workers mid-recv; the fds stay open (and owned by the
    // serving worker) until ServeConnection returns.
    for (const int fd : active_) ::shutdown(fd, SHUT_RDWR);
    for (const int fd : pending_) ::close(fd);
    pending_.clear();
  }
  queue_cv_.NotifyAll();
  ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  started_ = false;
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down (Stop) or fatal — exit loop
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    MutexLock lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    pending_.push_back(fd);
    queue_cv_.NotifyOne();
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd;
    {
      MutexLock lock(mu_);
      while (pending_.empty() && !stopping_) queue_cv_.Wait(mu_);
      if (stopping_) return;
      fd = pending_.front();
      pending_.pop_front();
      active_.insert(fd);
    }
    ServeConnection(fd);
    {
      MutexLock lock(mu_);
      active_.erase(fd);
    }
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  HttpRequestReader reader(options_.limits);
  char buf[8192];
  for (;;) {
    // Drain every request already buffered (pipelining / keep-alive)
    // before the next recv.
    while (reader.state() == HttpRequestReader::State::kReady) {
      const HttpRequest& req = reader.request();
      HttpResponse response = handler_(req);
      const bool close = response.close || !req.keep_alive;
      response.close = close;
      if (!SendAll(fd, SerializeHttpResponse(response)) || close) return;
      reader.ConsumeRequest();
    }
    if (reader.state() == HttpRequestReader::State::kError) {
      HttpResponse reject;
      reject.status = reader.error_status();
      reject.body =
          "{\"ok\":false,\"error\":{\"code\":" +
          JsonQuote(HttpReasonPhrase(reject.status)) +
          ",\"message\":" + JsonQuote(reader.error_message()) + "}}";
      reject.close = true;
      SendAll(fd, SerializeHttpResponse(reject));
      return;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // peer closed or Stop() shut the socket down
    reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

}  // namespace sqlnf
