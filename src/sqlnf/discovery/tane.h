// TANE: levelwise partition-based discovery of minimal classical FDs
// (Huhtala et al.; the best-of-breed family surveyed in the paper's
// [33]). Serves as the second, independent implementation of classical
// FD discovery — the pairwise difference-set miner of discover.h is the
// first — and scales to larger row counts because its cost is driven by
// partition products, not row pairs.
//
// Nulls are treated as ordinary values (⊥ = ⊥), matching
// FdSemantics::kClassical and the classical-FD columns of Section 7.

#ifndef SQLNF_DISCOVERY_TANE_H_
#define SQLNF_DISCOVERY_TANE_H_

#include <vector>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/core/table.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

struct TaneOptions {
  /// Stop after this lattice level (max LHS size).
  int max_lhs_size = 5;
};

struct TaneResult {
  /// Minimal non-trivial classical FDs, one per (LHS, RHS-attr) merged
  /// by LHS (RHS = union), sorted by LHS then mode for determinism.
  std::vector<FunctionalDependency> fds;
  /// Minimal keys (error-0 LHSs with no error-0 proper subset) found up
  /// to the level cap.
  std::vector<AttributeSet> minimal_keys;
  int levels_processed = 0;
  long long partitions_computed = 0;
};

/// Runs TANE over `table`.
Result<TaneResult> DiscoverFdsTane(const Table& table,
                                   const TaneOptions& options = {});

}  // namespace sqlnf

#endif  // SQLNF_DISCOVERY_TANE_H_
