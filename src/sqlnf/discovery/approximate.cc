#include "sqlnf/discovery/approximate.h"

#include <functional>
#include <map>

#include "sqlnf/discovery/partition.h"

namespace sqlnf {

Result<ApproximateResult> DiscoverApproximate(
    const Table& table, const ApproximateOptions& options) {
  if (table.num_rows() == 0) {
    return Status::Invalid("cannot mine constraints from an empty table");
  }
  if (options.epsilon < 0 || options.epsilon >= 1) {
    return Status::Invalid("epsilon must be in [0, 1)");
  }
  const int n = table.num_columns();
  const int rows = table.num_rows();
  EncodedTable encoded(table);

  // Partition memo over all visited sets.
  std::map<AttributeSet, StrippedPartition> partitions;
  partitions.emplace(AttributeSet(), StrippedPartition::Universe(rows));
  for (AttributeId a = 0; a < n; ++a) {
    partitions.emplace(AttributeSet::Single(a),
                       StrippedPartition::ForColumn(encoded, a));
  }
  std::function<const StrippedPartition&(const AttributeSet&)> get =
      [&](const AttributeSet& x) -> const StrippedPartition& {
    auto it = partitions.find(x);
    if (it != partitions.end()) return it->second;
    AttributeId first = *x.begin();
    AttributeSet rest = x;
    rest.Remove(first);
    StrippedPartition product =
        get(AttributeSet::Single(first)).Intersect(get(rest), rows);
    return partitions.emplace(x, std::move(product)).first->second;
  };

  ApproximateResult result;
  // Minimality bookkeeping: qualifying (lhs, rhs) pairs / key sets.
  std::map<AttributeId, std::vector<AttributeSet>> fd_minimal;
  std::vector<AttributeSet> key_minimal;
  auto has_subset = [](const std::vector<AttributeSet>& sets,
                       const AttributeSet& x) {
    for (const AttributeSet& s : sets) {
      if (s.IsSubsetOf(x)) return true;
    }
    return false;
  };

  // Levelwise over all subsets by ascending size.
  std::vector<AttributeSet> level = {AttributeSet()};
  for (int size = 0; size <= options.max_lhs_size; ++size) {
    for (const AttributeSet& x : level) {
      // ε-key?
      const StrippedPartition& px = get(x);
      double key_error = static_cast<double>(px.error()) / rows;
      if (!has_subset(key_minimal, x) && key_error <= options.epsilon) {
        key_minimal.push_back(x);
        result.keys.push_back({x, key_error});
      }
      // ε-FDs x → a.
      for (AttributeId a = 0; a < n; ++a) {
        if (x.Contains(a)) continue;
        if (has_subset(fd_minimal[a], x)) continue;
        AttributeSet xa = x;
        xa.Add(a);
        double g3 =
            static_cast<double>(px.error() - get(xa).error()) / rows;
        if (g3 <= options.epsilon) {
          fd_minimal[a].push_back(x);
          result.fds.push_back({x, a, g3});
        }
      }
    }
    // Next level: all (size+1)-subsets — generated from the previous
    // level without pruning (qualifying sets only stop their own
    // supersets via the minimality filter above).
    if (size == options.max_lhs_size) break;
    std::map<AttributeSet, bool> next;
    for (const AttributeSet& x : level) {
      for (AttributeId a = 0; a < n; ++a) {
        if (x.Contains(a)) continue;
        AttributeSet bigger = x;
        bigger.Add(a);
        next.emplace(bigger, true);
      }
    }
    level.clear();
    for (const auto& [x, unused] : next) level.push_back(x);
  }
  return result;
}

}  // namespace sqlnf
