// Discovery of keys and functional dependencies from data, and the
// FD classification used in the paper's Section 7:
//
//   classical FD — nulls treated as ordinary domain values
//   nn-FD        — classical FD whose LHS columns contain no nulls
//   p-FD         — possible FD (strong-similarity LHS)
//   c-FD         — certain FD (weak-similarity LHS; LHS may contain the
//                  RHS attribute — internal c-FDs are meaningful)
//   t-FD         — discovered c-FD whose total strengthening X →w X(Y)
//                  also holds on the instance (Definition 9)
//   λ-FD         — t-FD usable for VRNF decomposition: some RHS
//                  attribute outside the LHS, and the LHS is not a
//                  certain key of the instance
//
// All discovered FDs are non-trivial with minimal LHSs, reported once
// per (mode, LHS) with the union of their RHS attributes — matching the
// paper's counting convention ("only once per LHS").

#ifndef SQLNF_DISCOVERY_DISCOVER_H_
#define SQLNF_DISCOVERY_DISCOVER_H_

#include <vector>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/core/table.h"
#include "sqlnf/discovery/hitting_set.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

struct DiscoveryOptions {
  /// Cap on rows entering the O(n²) pair sweep (ascending prefix);
  /// <= 0 disables the cap.
  int max_rows = 5000;
  HittingSetOptions hitting;  // LHS size / count caps
  /// Threads for the pair sweep (<= 1 → serial). The sweep is chunked
  /// and merged in row order, so the discovered constraints are
  /// IDENTICAL for every thread count (see agree_sets.h).
  int threads = 1;
};

/// Everything mined from one table.
struct DiscoveryResult {
  AttributeSet null_free_columns;  // instance-inferred NFS

  // Minimal-LHS FDs, grouped per LHS (RHS = union of valid RHS attrs).
  std::vector<FunctionalDependency> classical_fds;  // stored as mode s
  std::vector<FunctionalDependency> nn_fds;         // stored as mode s
  std::vector<FunctionalDependency> p_fds;
  std::vector<FunctionalDependency> c_fds;

  // Minimal keys of the instance.
  std::vector<KeyConstraint> p_keys;
  std::vector<KeyConstraint> c_keys;
};

/// Mines `table`. The instance NFS is inferred (columns without ⊥).
Result<DiscoveryResult> DiscoverConstraints(
    const Table& table, const DiscoveryOptions& options = {});

/// One FD semantics for single-semantics mining (benchmark / tooling
/// entry point; DiscoverConstraints mines all four in one pass).
enum class FdSemantics {
  kClassical,   // nulls as ordinary values
  kNotNullLhs,  // classical, LHS restricted to null-free columns
  kPossible,    // strong-similarity LHS
  kCertain,     // weak-similarity LHS (internal FDs allowed)
};

/// Mines minimal-LHS FDs of one semantics only (its own pair sweep).
Result<std::vector<FunctionalDependency>> DiscoverFds(
    const Table& table, FdSemantics semantics,
    const DiscoveryOptions& options = {});

/// One row of the paper's FD-count table plus the λ-FD details.
struct FdClassification {
  int nn_count = 0;
  int p_count = 0;
  int c_count = 0;
  int t_count = 0;
  int lambda_count = 0;

  std::vector<FunctionalDependency> t_fds;
  std::vector<FunctionalDependency> lambda_fds;
};

/// Classifies the discovered c-FDs into total and λ-FDs by checking the
/// total strengthening / certain-key status on the instance.
FdClassification ClassifyDiscovered(const Table& table,
                                    const DiscoveryResult& result);

/// Relative size (in [0,1]) of the set-projection of `table` onto the
/// attributes of `fd` (LHS ∪ RHS) — the Figure 6 measure.
Result<double> RelativeProjectionSize(const Table& table,
                                      const FunctionalDependency& fd);

}  // namespace sqlnf

#endif  // SQLNF_DISCOVERY_DISCOVER_H_
