// Minimal hitting set enumeration.
//
// Discovery reduces "minimal LHSs of valid FDs" to: minimal subsets of a
// universe U that intersect every set of a family F (the complements of
// the maximal agree sets). We enumerate with a branch-and-prune search:
// pick the first unhit set, branch on its elements, and reject branches
// that can no longer be minimal (an already-chosen element whose hit
// sets are all hit by others).

#ifndef SQLNF_DISCOVERY_HITTING_SET_H_
#define SQLNF_DISCOVERY_HITTING_SET_H_

#include <vector>

#include "sqlnf/core/attribute_set.h"

namespace sqlnf {

struct HittingSetOptions {
  int max_size = 8;         // ignore hitting sets larger than this
  int max_results = 10000;  // stop after this many minimal sets
};

/// All minimal subsets of `universe` hitting every set in `family`
/// (up to the option caps), sorted by size then bit pattern.
///
/// Sets in `family` are intersected with `universe` first; an empty
/// intersection makes the instance unsatisfiable and yields {}.
/// An empty family yields {∅}.
std::vector<AttributeSet> MinimalHittingSets(
    const AttributeSet& universe, const std::vector<AttributeSet>& family,
    const HittingSetOptions& options = {});

}  // namespace sqlnf

#endif  // SQLNF_DISCOVERY_HITTING_SET_H_
