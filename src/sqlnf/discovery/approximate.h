// Approximate (classical) FDs and keys — the dirty-data lens of
// Section 7.
//
// The paper's manual inspection of Figure 6 found that most wide λ-FDs
// "should really be certain keys, but are not due to dirty data", and
// that an unknown number of useful FDs are hidden by a few violating
// rows. Approximate discovery quantifies that: X → A holds with error
// g3 = (minimum rows to delete so that X → A holds exactly) / rows,
// computable from stripped partitions as (e(X) − e(X ∪ A)) / rows.
// Likewise X is an ε-key when e(X)/rows ≤ ε.
//
// Classical (⊥-as-value) semantics; exact when epsilon = 0. The search
// is plain levelwise over all LHSs up to the size cap, reporting only
// minimal qualifying LHSs.

#ifndef SQLNF_DISCOVERY_APPROXIMATE_H_
#define SQLNF_DISCOVERY_APPROXIMATE_H_

#include <vector>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/core/table.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

struct ApproximateOptions {
  double epsilon = 0.02;  // tolerated g3 error fraction
  int max_lhs_size = 3;
};

struct ApproximateFd {
  AttributeSet lhs;
  AttributeId rhs = 0;
  double error = 0.0;  // g3 ∈ [0, 1]
};

struct ApproximateKey {
  AttributeSet attrs;
  double error = 0.0;  // e(X)/rows: duplicated-row fraction
};

struct ApproximateResult {
  std::vector<ApproximateFd> fds;    // minimal LHS per RHS
  std::vector<ApproximateKey> keys;  // minimal ε-keys
};

/// Mines ε-approximate FDs and keys.
Result<ApproximateResult> DiscoverApproximate(
    const Table& table, const ApproximateOptions& options = {});

}  // namespace sqlnf

#endif  // SQLNF_DISCOVERY_APPROXIMATE_H_
