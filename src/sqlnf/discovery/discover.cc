#include "sqlnf/discovery/discover.h"

#include <map>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/decomposition/decomposition.h"
#include "sqlnf/discovery/agree_sets.h"

namespace sqlnf {

namespace {

// Minimal LHSs for RHS attribute `a` under one similarity semantics:
// minimal subsets of `universe` hitting every complement of sim(pair)
// over the pairs that differ on `a` (a ∉ eq).
std::vector<AttributeSet> MinimalLhs(
    const std::vector<PairAgreement>& agreements, AttributeId a,
    const AttributeSet& all, const AttributeSet& universe,
    AttributeSet PairAgreement::*sim, const HittingSetOptions& options) {
  std::vector<AttributeSet> violating_sims;
  for (const PairAgreement& pair : agreements) {
    if (pair.eq.Contains(a)) continue;
    violating_sims.push_back(pair.*sim);
  }
  violating_sims = MaximalSets(std::move(violating_sims));
  std::vector<AttributeSet> complements;
  complements.reserve(violating_sims.size());
  for (const AttributeSet& s : violating_sims) {
    complements.push_back(all.Difference(s));
  }
  return MinimalHittingSets(universe, complements, options);
}

// Groups (lhs -> rhs attr) pairs into one FD per LHS.
std::vector<FunctionalDependency> GroupByLhs(
    const std::map<AttributeSet, AttributeSet>& rhs_by_lhs, Mode mode) {
  std::vector<FunctionalDependency> out;
  out.reserve(rhs_by_lhs.size());
  for (const auto& [lhs, rhs] : rhs_by_lhs) {
    out.push_back({lhs, rhs, mode});
  }
  return out;
}

}  // namespace

Result<DiscoveryResult> DiscoverConstraints(const Table& table,
                                            const DiscoveryOptions& options) {
  if (table.num_rows() == 0) {
    return Status::Invalid("cannot mine constraints from an empty table");
  }
  EncodedTable enc(table);
  const std::vector<PairAgreement> agreements = CollectAgreements(
      enc, options.max_rows, ParallelOptions{options.threads});
  const AttributeSet all = table.schema().all();

  DiscoveryResult result;
  result.null_free_columns = enc.NullFreeColumns();

  // Keys: hit every pair's dissimilarity (no RHS condition).
  {
    std::vector<AttributeSet> strong_sims;
    std::vector<AttributeSet> weak_sims;
    for (const PairAgreement& pair : agreements) {
      strong_sims.push_back(pair.strong);
      weak_sims.push_back(pair.weak);
    }
    std::vector<AttributeSet> complements;
    for (const AttributeSet& s : MaximalSets(std::move(strong_sims))) {
      complements.push_back(all.Difference(s));
    }
    for (const AttributeSet& x :
         MinimalHittingSets(all, complements, options.hitting)) {
      result.p_keys.push_back(KeyConstraint::Possible(x));
    }
    complements.clear();
    for (const AttributeSet& s : MaximalSets(std::move(weak_sims))) {
      complements.push_back(all.Difference(s));
    }
    for (const AttributeSet& x :
         MinimalHittingSets(all, complements, options.hitting)) {
      result.c_keys.push_back(KeyConstraint::Certain(x));
    }
  }

  // FDs, one RHS attribute at a time.
  std::map<AttributeSet, AttributeSet> classical, nn, possible, certain;
  for (AttributeId a = 0; a < table.num_columns(); ++a) {
    const AttributeSet rhs = AttributeSet::Single(a);
    const AttributeSet without_a = all.Difference(rhs);

    for (const AttributeSet& lhs :
         MinimalLhs(agreements, a, all, without_a, &PairAgreement::eq,
                    options.hitting)) {
      classical[lhs] = classical[lhs].Union(rhs);
    }
    for (const AttributeSet& lhs :
         MinimalLhs(agreements, a, all,
                    without_a.Intersect(result.null_free_columns),
                    &PairAgreement::eq, options.hitting)) {
      nn[lhs] = nn[lhs].Union(rhs);
    }
    for (const AttributeSet& lhs :
         MinimalLhs(agreements, a, all, without_a, &PairAgreement::strong,
                    options.hitting)) {
      possible[lhs] = possible[lhs].Union(rhs);
    }
    // Certain FDs: the LHS may contain the RHS attribute (internal
    // c-FDs such as Example 1's  name,dob ->w dob  are meaningful), so
    // the universe is all of T. Trivial outcomes (a null-free RHS
    // attribute covering itself) are filtered below.
    for (const AttributeSet& lhs :
         MinimalLhs(agreements, a, all, all, &PairAgreement::weak,
                    options.hitting)) {
      if (lhs.Contains(a) && result.null_free_columns.Contains(a)) {
        continue;  // trivial: Y ⊆ X ∩ T_S
      }
      certain[lhs] = certain[lhs].Union(rhs);
    }
  }

  result.classical_fds = GroupByLhs(classical, Mode::kPossible);
  result.nn_fds = GroupByLhs(nn, Mode::kPossible);
  result.p_fds = GroupByLhs(possible, Mode::kPossible);
  result.c_fds = GroupByLhs(certain, Mode::kCertain);
  return result;
}

Result<std::vector<FunctionalDependency>> DiscoverFds(
    const Table& table, FdSemantics semantics,
    const DiscoveryOptions& options) {
  if (table.num_rows() == 0) {
    return Status::Invalid("cannot mine constraints from an empty table");
  }
  EncodedTable enc(table);
  const std::vector<PairAgreement> agreements = CollectAgreements(
      enc, options.max_rows, ParallelOptions{options.threads});
  const AttributeSet all = table.schema().all();
  const AttributeSet null_free = enc.NullFreeColumns();

  std::map<AttributeSet, AttributeSet> grouped;
  for (AttributeId a = 0; a < table.num_columns(); ++a) {
    const AttributeSet rhs = AttributeSet::Single(a);
    const AttributeSet without_a = all.Difference(rhs);
    AttributeSet universe = without_a;
    AttributeSet PairAgreement::*sim = &PairAgreement::eq;
    switch (semantics) {
      case FdSemantics::kClassical:
        break;
      case FdSemantics::kNotNullLhs:
        universe = without_a.Intersect(null_free);
        break;
      case FdSemantics::kPossible:
        sim = &PairAgreement::strong;
        break;
      case FdSemantics::kCertain:
        universe = all;
        sim = &PairAgreement::weak;
        break;
    }
    for (const AttributeSet& lhs :
         MinimalLhs(agreements, a, all, universe, sim, options.hitting)) {
      if (semantics == FdSemantics::kCertain && lhs.Contains(a) &&
          null_free.Contains(a)) {
        continue;  // trivial
      }
      grouped[lhs] = grouped[lhs].Union(rhs);
    }
  }
  Mode mode = semantics == FdSemantics::kCertain ? Mode::kCertain
                                                 : Mode::kPossible;
  return GroupByLhs(grouped, mode);
}

FdClassification ClassifyDiscovered(const Table& table,
                                    const DiscoveryResult& result) {
  FdClassification out;
  out.nn_count = static_cast<int>(result.nn_fds.size());
  out.p_count = static_cast<int>(result.p_fds.size());
  out.c_count = static_cast<int>(result.c_fds.size());

  for (const FunctionalDependency& fd : result.c_fds) {
    FunctionalDependency total =
        FunctionalDependency::Certain(fd.lhs, fd.lhs.Union(fd.rhs));
    if (!Satisfies(table, total)) continue;
    ++out.t_count;
    out.t_fds.push_back(total);

    const bool has_external_rhs = !fd.rhs.IsSubsetOf(fd.lhs);
    const bool lhs_is_ckey =
        Satisfies(table, KeyConstraint::Certain(fd.lhs));
    if (has_external_rhs && !lhs_is_ckey) {
      ++out.lambda_count;
      out.lambda_fds.push_back(total);
    }
  }
  return out;
}

Result<double> RelativeProjectionSize(const Table& table,
                                      const FunctionalDependency& fd) {
  if (table.num_rows() == 0) {
    return Status::Invalid("empty table");
  }
  SQLNF_ASSIGN_OR_RETURN(
      Table projected,
      ProjectSet(table, fd.lhs.Union(fd.rhs), table.schema().name() + "_p"));
  return static_cast<double>(projected.num_rows()) / table.num_rows();
}

}  // namespace sqlnf
