#include "sqlnf/discovery/tane.h"

#include <algorithm>
#include <map>

#include "sqlnf/discovery/partition.h"

namespace sqlnf {

namespace {

struct Node {
  StrippedPartition partition;
  AttributeSet cplus;  // the C+(X) candidate set
};

using Level = std::map<AttributeSet, Node>;

// On-demand partitions for sets that are no longer (or never were) in
// the lattice — needed by the key-pruning minimality test, whose probe
// sets may have been pruned away. Memoized.
class PartitionCache {
 public:
  PartitionCache(const EncodedTable& table) : rows_(table.num_rows()) {
    for (AttributeId a = 0; a < table.num_columns(); ++a) {
      cache_.emplace(AttributeSet::Single(a),
                     StrippedPartition::ForColumn(table, a));
    }
    cache_.emplace(AttributeSet(), StrippedPartition::Universe(rows_));
  }

  const StrippedPartition& Get(const AttributeSet& x) {
    auto it = cache_.find(x);
    if (it != cache_.end()) return it->second;
    AttributeId first = *x.begin();
    AttributeSet rest = x;
    rest.Remove(first);
    StrippedPartition product =
        Get(AttributeSet::Single(first)).Intersect(Get(rest), rows_);
    return cache_.emplace(x, std::move(product)).first->second;
  }

  // Y → A under ⊥-as-value semantics: e(Y) == e(Y ∪ {A}).
  bool Holds(const AttributeSet& y, AttributeId a) {
    AttributeSet ya = y;
    ya.Add(a);
    return Get(y).error() == Get(ya).error();
  }

 private:
  int rows_;
  std::map<AttributeSet, StrippedPartition> cache_;
};

}  // namespace

Result<TaneResult> DiscoverFdsTane(const Table& table,
                                   const TaneOptions& options) {
  if (table.num_rows() == 0) {
    return Status::Invalid("cannot mine constraints from an empty table");
  }
  if (options.max_lhs_size < 1) {
    return Status::Invalid("max_lhs_size must be at least 1");
  }
  const int n = table.num_columns();
  const int rows = table.num_rows();
  const AttributeSet all = table.schema().all();
  EncodedTable encoded(table);
  PartitionCache partitions(encoded);

  TaneResult result;
  std::map<AttributeSet, AttributeSet> fds_by_lhs;  // lhs -> rhs union
  auto emit = [&](const AttributeSet& lhs, AttributeId a) {
    fds_by_lhs[lhs].Add(a);
  };

  // Level 0 state: e(∅) and C+(∅) = R.
  const int empty_error = rows >= 2 ? rows - 1 : 0;

  // Level 1.
  Level current;
  for (AttributeId a = 0; a < n; ++a) {
    Node node;
    node.partition = StrippedPartition::ForColumn(encoded, a);
    node.cplus = all;
    ++result.partitions_computed;
    current.emplace(AttributeSet::Single(a), std::move(node));
  }

  // Error lookup across the previous level ({∅} handled specially).
  std::map<AttributeSet, int> prev_errors;  // errors at level k-1
  std::map<AttributeSet, AttributeSet> prev_cplus;
  prev_errors[AttributeSet()] = empty_error;
  prev_cplus[AttributeSet()] = all;

  for (int level = 1;
       level <= options.max_lhs_size && !current.empty(); ++level) {
    result.levels_processed = level;

    // compute_dependencies.
    for (auto& [x, node] : current) {
      // C+(X) = ∩_{A∈X} C+(X \ A).
      AttributeSet cplus = all;
      for (AttributeId a : x) {
        AttributeSet smaller = x;
        smaller.Remove(a);
        auto it = prev_cplus.find(smaller);
        cplus = cplus.Intersect(it != prev_cplus.end() ? it->second
                                                       : AttributeSet());
      }
      node.cplus = cplus;
    }
    for (auto& [x, node] : current) {
      for (AttributeId a : x.Intersect(node.cplus)) {
        AttributeSet lhs = x;
        lhs.Remove(a);
        auto it = prev_errors.find(lhs);
        if (it == prev_errors.end()) continue;  // pruned subset
        if (it->second == node.partition.error()) {
          emit(lhs, a);  // lhs → a is valid and minimal
          node.cplus.Remove(a);
          node.cplus = node.cplus.Difference(all.Difference(x));
        }
      }
    }

    // prune.
    std::vector<AttributeSet> to_delete;
    for (const auto& [x, node] : current) {
      if (node.cplus.empty()) {
        to_delete.push_back(x);
        continue;
      }
      if (node.partition.error() == 0) {  // X is a (minimal) superkey
        for (AttributeId a : node.cplus.Difference(x)) {
          // X → a holds vacuously; it is minimal iff no maximal proper
          // subset already determines a. The probe sets may have been
          // pruned from the lattice, so test by definition with
          // on-demand partitions.
          bool minimal = true;
          for (AttributeId b : x) {
            AttributeSet smaller = x;
            smaller.Remove(b);
            if (partitions.Holds(smaller, a)) {
              minimal = false;
              break;
            }
          }
          if (minimal) emit(x, a);
        }
        result.minimal_keys.push_back(x);
        to_delete.push_back(x);
      }
    }
    for (const AttributeSet& x : to_delete) current.erase(x);

    // generate_next_level by prefix join.
    prev_errors.clear();
    prev_cplus.clear();
    for (const auto& [x, node] : current) {
      prev_errors[x] = node.partition.error();
      prev_cplus[x] = node.cplus;
    }

    if (level == options.max_lhs_size) break;
    Level next;
    std::vector<const AttributeSet*> keys;
    keys.reserve(current.size());
    for (const auto& [x, node] : current) keys.push_back(&x);
    for (size_t i = 0; i < keys.size(); ++i) {
      for (size_t j = i + 1; j < keys.size(); ++j) {
        const AttributeSet& x = *keys[i];
        const AttributeSet& y = *keys[j];
        AttributeSet merged = x.Union(y);
        if (merged.size() != level + 1) continue;
        if (next.contains(merged)) continue;
        // All level-sized subsets must have survived pruning.
        bool all_present = true;
        for (AttributeId a : merged) {
          AttributeSet sub = merged;
          sub.Remove(a);
          if (!current.contains(sub)) {
            all_present = false;
            break;
          }
        }
        if (!all_present) continue;
        Node node;
        node.partition = current.at(x).partition.Intersect(
            current.at(y).partition, rows);
        ++result.partitions_computed;
        node.cplus = all;
        next.emplace(merged, std::move(node));
      }
    }
    current = std::move(next);
  }

  for (const auto& [lhs, rhs] : fds_by_lhs) {
    result.fds.push_back(FunctionalDependency::Possible(lhs, rhs));
  }
  std::sort(result.minimal_keys.begin(), result.minimal_keys.end());
  return result;
}

}  // namespace sqlnf
