#include "sqlnf/discovery/hitting_set.h"

#include <algorithm>
#include <bit>
#include <unordered_set>

namespace sqlnf {

namespace {

class Enumerator {
 public:
  Enumerator(std::vector<uint64_t> family, const HittingSetOptions& options)
      : family_(std::move(family)), options_(options) {}

  std::vector<AttributeSet> Run() {
    Search(0);
    std::vector<AttributeSet> out;
    out.reserve(results_.size());
    for (uint64_t bits : results_) {
      out.push_back(AttributeSet::FromBits(bits));
    }
    std::sort(out.begin(), out.end(),
              [](const AttributeSet& a, const AttributeSet& b) {
                return a.size() != b.size() ? a.size() < b.size()
                                            : a.bits() < b.bits();
              });
    return out;
  }

 private:
  // Every element of `chosen` must be critical: it alone hits some set.
  bool AllCritical(uint64_t chosen) const {
    for (uint64_t v = chosen; v != 0; v &= v - 1) {
      uint64_t elem = v & ~(v - 1);  // lowest set bit as a mask
      bool critical = false;
      for (uint64_t s : family_) {
        if ((s & elem) != 0 && (s & (chosen & ~elem)) == 0) {
          critical = true;
          break;
        }
      }
      if (!critical) return false;
    }
    return true;
  }

  void Search(uint64_t chosen) {
    if (static_cast<int>(results_.size()) >= options_.max_results) return;
    // First set not hit by `chosen`, preferring the smallest for a
    // narrower branching factor.
    const uint64_t* branch_set = nullptr;
    int best_size = 65;
    for (const uint64_t& s : family_) {
      if ((s & chosen) != 0) continue;
      int size = std::popcount(s);
      if (size < best_size) {
        best_size = size;
        branch_set = &s;
        if (size <= 1) break;
      }
    }
    if (branch_set == nullptr) {
      // All sets hit; `chosen` is minimal because every element stayed
      // critical along the branch.
      results_.insert(chosen);
      return;
    }
    if (std::popcount(chosen) >= options_.max_size) return;  // too deep
    for (uint64_t v = *branch_set; v != 0; v &= v - 1) {
      uint64_t elem = v & ~(v - 1);
      uint64_t next = chosen | elem;
      if (!AllCritical(next)) continue;
      Search(next);
      if (static_cast<int>(results_.size()) >= options_.max_results) {
        return;
      }
    }
  }

  std::vector<uint64_t> family_;
  HittingSetOptions options_;
  std::unordered_set<uint64_t> results_;
};

}  // namespace

std::vector<AttributeSet> MinimalHittingSets(
    const AttributeSet& universe, const std::vector<AttributeSet>& family,
    const HittingSetOptions& options) {
  std::vector<uint64_t> sets;
  sets.reserve(family.size());
  for (const AttributeSet& s : family) {
    uint64_t restricted = s.bits() & universe.bits();
    if (restricted == 0) return {};  // unhittable
    sets.push_back(restricted);
  }
  // Keep only minimal sets of the family: a superset's hit requirement
  // is implied by the subset's.
  std::sort(sets.begin(), sets.end(), [](uint64_t a, uint64_t b) {
    return std::popcount(a) < std::popcount(b);
  });
  std::vector<uint64_t> minimal_family;
  for (uint64_t s : sets) {
    bool dominated = false;
    for (uint64_t m : minimal_family) {
      if ((m & ~s) == 0) {  // m ⊆ s
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal_family.push_back(s);
  }
  return Enumerator(std::move(minimal_family), options).Run();
}

}  // namespace sqlnf
