#include "sqlnf/discovery/partition.h"

#include <unordered_map>

namespace sqlnf {

void StrippedPartition::Finalize() {
  error_ = 0;
  for (const auto& c : classes_) {
    error_ += static_cast<int>(c.size()) - 1;
  }
}

StrippedPartition StrippedPartition::ForColumn(const EncodedTable& table,
                                               AttributeId column) {
  std::unordered_map<uint32_t, std::vector<int>> groups;
  for (int row = 0; row < table.num_rows(); ++row) {
    groups[table.code(column, row)].push_back(row);
  }
  StrippedPartition out;
  for (auto& [code, rows] : groups) {
    if (rows.size() >= 2) out.classes_.push_back(std::move(rows));
  }
  out.Finalize();
  return out;
}

StrippedPartition StrippedPartition::Universe(int num_rows) {
  StrippedPartition out;
  if (num_rows >= 2) {
    std::vector<int> all(num_rows);
    for (int i = 0; i < num_rows; ++i) all[i] = i;
    out.classes_.push_back(std::move(all));
  }
  out.Finalize();
  return out;
}

StrippedPartition StrippedPartition::Intersect(
    const StrippedPartition& other, int num_rows) const {
  // Standard probe-table product (TANE): label rows by their class in
  // *this, then split other's membership within those labels.
  std::vector<int> label(num_rows, -1);
  for (int c = 0; c < num_classes(); ++c) {
    for (int row : classes_[c]) label[row] = c;
  }
  StrippedPartition out;
  std::unordered_map<int, std::vector<int>> bucket;
  for (const auto& other_class : other.classes_) {
    bucket.clear();
    for (int row : other_class) {
      if (label[row] >= 0) bucket[label[row]].push_back(row);
    }
    for (auto& [lbl, rows] : bucket) {
      if (rows.size() >= 2) out.classes_.push_back(std::move(rows));
    }
  }
  out.Finalize();
  return out;
}

}  // namespace sqlnf
