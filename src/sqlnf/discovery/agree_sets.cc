#include "sqlnf/discovery/agree_sets.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_set>

namespace sqlnf {

PairAgreement ComputeAgreement(const EncodedTable& enc, int row1,
                               int row2) {
  PairAgreement out;
  for (AttributeId col = 0; col < enc.num_columns(); ++col) {
    const uint32_t a = enc.code(col, row1);
    const uint32_t b = enc.code(col, row2);
    if (a == b) {
      out.eq.Add(col);
      out.weak.Add(col);
      if (a != EncodedTable::kNullCode) out.strong.Add(col);
    } else if (a == EncodedTable::kNullCode ||
               b == EncodedTable::kNullCode) {
      out.weak.Add(col);
    }
  }
  return out;
}

namespace {

struct TripleHash {
  size_t operator()(const std::array<uint64_t, 3>& t) const {
    return t[0] * 1000003 + t[1] * 31 + t[2];
  }
};
using TripleKey = std::array<uint64_t, 3>;
using SeenSet = std::unordered_set<TripleKey, TripleHash>;

TripleKey KeyOf(const PairAgreement& agreement) {
  return {agreement.eq.bits(), agreement.strong.bits(),
          agreement.weak.bits()};
}

// Sweeps the triangle slice with outer rows in [row_begin, row_end),
// inner rows up to n, deduplicating into `seen`/`out` in (i, j) order.
void SweepSlice(const EncodedTable& enc, int n, int row_begin, int row_end,
                SeenSet* seen, std::vector<PairAgreement>* out) {
  for (int i = row_begin; i < row_end; ++i) {
    for (int j = i + 1; j < n; ++j) {
      PairAgreement agreement = ComputeAgreement(enc, i, j);
      if (seen->insert(KeyOf(agreement)).second) {
        out->push_back(agreement);
      }
    }
  }
}

}  // namespace

std::vector<PairAgreement> CollectAgreements(const EncodedTable& enc,
                                             int max_rows,
                                             const ParallelOptions& par) {
  int n = enc.num_rows();
  if (max_rows > 0 && max_rows < n) n = max_rows;

  if (par.threads <= 1 || n < 256) {
    SeenSet seen;
    std::vector<PairAgreement> out;
    SweepSlice(enc, n, 0, n, &seen, &out);
    return out;
  }

  // Chunk the outer rows so each chunk covers roughly the same number of
  // PAIRS (outer row i owns n-1-i pairs): the boundary for cumulative
  // fraction f of the triangle is b = n·(1 − √(1−f)). Chunks exceed the
  // thread count for dynamic load balancing.
  ThreadPool pool(par.threads);
  const int chunks = std::min(n, pool.num_threads() * 8);
  std::vector<int> bounds(chunks + 1, n);
  bounds[0] = 0;
  for (int c = 1; c < chunks; ++c) {
    const double f = static_cast<double>(c) / chunks;
    int b = static_cast<int>(n * (1.0 - std::sqrt(1.0 - f)));
    bounds[c] = std::clamp(b, bounds[c - 1], n);
  }

  // Per-chunk sweep with local dedup; chunks keep (i, j) order.
  struct Slice {
    SeenSet seen;
    std::vector<PairAgreement> out;
  };
  std::vector<Slice> slices(chunks);
  pool.RunTasks(chunks, [&](int c) {
    SweepSlice(enc, n, bounds[c], bounds[c + 1], &slices[c].seen,
               &slices[c].out);
  });

  // Ordered merge: chunks partition the outer rows in ascending order,
  // so folding them in chunk order against one global seen-set yields
  // exactly the serial output (same triples, same first-occurrence
  // positions).
  SeenSet seen;
  std::vector<PairAgreement> out;
  for (Slice& slice : slices) {
    for (PairAgreement& agreement : slice.out) {
      if (seen.insert(KeyOf(agreement)).second) {
        out.push_back(agreement);
      }
    }
  }
  return out;
}

std::vector<AttributeSet> MaximalSets(std::vector<AttributeSet> sets) {
  std::sort(sets.begin(), sets.end(),
            [](const AttributeSet& a, const AttributeSet& b) {
              return a.size() > b.size();
            });
  std::vector<AttributeSet> maximal;
  for (const AttributeSet& s : sets) {
    bool dominated = false;
    for (const AttributeSet& m : maximal) {
      if (s.IsSubsetOf(m)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(s);
  }
  return maximal;
}

}  // namespace sqlnf
