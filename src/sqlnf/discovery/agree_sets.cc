#include "sqlnf/discovery/agree_sets.h"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace sqlnf {

EncodedTable::EncodedTable(const Table& table)
    : num_rows_(table.num_rows()) {
  codes_.resize(table.num_columns());
  for (AttributeId col = 0; col < table.num_columns(); ++col) {
    std::map<Value, int32_t> dict;
    codes_[col].resize(num_rows_);
    for (int row = 0; row < num_rows_; ++row) {
      const Value& v = table.row(row)[col];
      if (v.is_null()) {
        codes_[col][row] = -1;
        continue;
      }
      auto [it, inserted] =
          dict.emplace(v, static_cast<int32_t>(dict.size()));
      codes_[col][row] = it->second;
    }
  }
}

AttributeSet EncodedTable::NullFreeColumns() const {
  AttributeSet out;
  for (AttributeId col = 0; col < num_columns(); ++col) {
    bool has_null = false;
    for (int32_t c : codes_[col]) {
      if (c == -1) {
        has_null = true;
        break;
      }
    }
    if (!has_null) out.Add(col);
  }
  return out;
}

PairAgreement ComputeAgreement(const EncodedTable& enc, int row1,
                               int row2) {
  PairAgreement out;
  for (AttributeId col = 0; col < enc.num_columns(); ++col) {
    const int32_t a = enc.code(col, row1);
    const int32_t b = enc.code(col, row2);
    if (a == b) {
      out.eq.Add(col);
      out.weak.Add(col);
      if (a != -1) out.strong.Add(col);
    } else if (a == -1 || b == -1) {
      out.weak.Add(col);
    }
  }
  return out;
}

std::vector<PairAgreement> CollectAgreements(const EncodedTable& enc,
                                             int max_rows) {
  int n = enc.num_rows();
  if (max_rows > 0 && max_rows < n) n = max_rows;

  struct TripleHash {
    size_t operator()(const std::array<uint64_t, 3>& t) const {
      return t[0] * 1000003 + t[1] * 31 + t[2];
    }
  };
  std::unordered_set<std::array<uint64_t, 3>, TripleHash> seen;
  std::vector<PairAgreement> out;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      PairAgreement agreement = ComputeAgreement(enc, i, j);
      std::array<uint64_t, 3> key = {agreement.eq.bits(),
                                     agreement.strong.bits(),
                                     agreement.weak.bits()};
      if (seen.insert(key).second) out.push_back(agreement);
    }
  }
  return out;
}

std::vector<AttributeSet> MaximalSets(std::vector<AttributeSet> sets) {
  std::sort(sets.begin(), sets.end(),
            [](const AttributeSet& a, const AttributeSet& b) {
              return a.size() > b.size();
            });
  std::vector<AttributeSet> maximal;
  for (const AttributeSet& s : sets) {
    bool dominated = false;
    for (const AttributeSet& m : maximal) {
      if (s.IsSubsetOf(m)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(s);
  }
  return maximal;
}

}  // namespace sqlnf
