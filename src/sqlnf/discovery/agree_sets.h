// Agree sets for dependency discovery (Section 7 substrate).
//
// For every pair of rows we record three attribute sets:
//   eq     — attributes with identical values (⊥ = ⊥ included),
//   strong — attributes where both values are non-null and equal,
//   weak   — attributes that are equal or have ⊥ on either side.
// (strong ⊆ eq ⊆ weak.)
//
// An FD X → A with semantics m is violated by a pair iff A ∉ eq and
// X ⊆ sim_m(pair); hence the valid LHSs for RHS A are exactly the sets
// hitting every complement U − sim_m(pair) over the violating pairs.
// Keys use the same machinery without the RHS condition. Only MAXIMAL
// agree sets need to be kept (a subset imposes a weaker constraint).
//
// The pair sweep runs on the shared columnar representation
// (core/encoded_table.h), the same one the engine validators and the
// incremental enforcer use.

#ifndef SQLNF_DISCOVERY_AGREE_SETS_H_
#define SQLNF_DISCOVERY_AGREE_SETS_H_

#include <cstdint>
#include <vector>

#include "sqlnf/core/encoded_table.h"
#include "sqlnf/core/table.h"
#include "sqlnf/util/parallel.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// The three agree sets of one row pair.
struct PairAgreement {
  AttributeSet eq;
  AttributeSet strong;
  AttributeSet weak;
};

PairAgreement ComputeAgreement(const EncodedTable& enc, int row1, int row2);

/// All pairwise agreements, deduplicated (identical triples collapse —
/// hitting-set constraints do not depend on multiplicity). Row pairs are
/// capped at `max_rows` rows (ascending prefix) to bound the quadratic
/// sweep; pass <= 0 for no cap.
///
/// With `par.threads > 1` the O(n²) pair triangle is swept by a thread
/// pool: each chunk of outer rows dedups locally, then the chunks merge
/// in row order against a global seen-set — the output is bit-identical
/// to the serial sweep (same triples, same first-occurrence order).
std::vector<PairAgreement> CollectAgreements(const EncodedTable& enc,
                                             int max_rows = 0,
                                             const ParallelOptions& par = {});

/// Keeps only sets that are maximal under inclusion.
std::vector<AttributeSet> MaximalSets(std::vector<AttributeSet> sets);

}  // namespace sqlnf

#endif  // SQLNF_DISCOVERY_AGREE_SETS_H_
