// Stripped partitions — the data structure behind partition-based FD
// discovery (TANE; Papenbrock et al.'s survey is the paper's [33]).
//
// The partition π_X groups row ids by their (exact, ⊥-as-value) values
// on X; the STRIPPED partition drops singleton classes. The error
// measure e(X) = Σ_c (|c| − 1) over stripped classes counts the rows
// that would have to be removed to make X a key, and supports the key
// facts:   X → A  ⟺  e(X) = e(X ∪ {A}),   X superkey ⟺ e(X) = 0.

#ifndef SQLNF_DISCOVERY_PARTITION_H_
#define SQLNF_DISCOVERY_PARTITION_H_

#include <vector>

#include "sqlnf/core/encoded_table.h"

namespace sqlnf {

/// A stripped partition of row ids.
class StrippedPartition {
 public:
  /// π_{A} for one column (⊥ treated as an ordinary value).
  static StrippedPartition ForColumn(const EncodedTable& table,
                                     AttributeId column);

  /// π_∅: one class of all rows (if ≥ 2 rows).
  static StrippedPartition Universe(int num_rows);

  /// Product π_X · π_Y (row ids must come from the same table).
  /// `num_rows` scratch space is reused across calls via the internal
  /// probe table.
  StrippedPartition Intersect(const StrippedPartition& other,
                              int num_rows) const;

  /// e(X): rows in stripped classes minus the class count.
  int error() const { return error_; }

  /// Number of stripped (non-singleton) classes.
  int num_classes() const { return static_cast<int>(classes_.size()); }

  const std::vector<std::vector<int>>& classes() const { return classes_; }

 private:
  void Finalize();

  std::vector<std::vector<int>> classes_;
  int error_ = 0;
};

}  // namespace sqlnf

#endif  // SQLNF_DISCOVERY_PARTITION_H_
