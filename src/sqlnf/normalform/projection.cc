#include "sqlnf/normalform/projection.h"

#include <algorithm>
#include <bit>
#include <map>
#include <vector>

#include "sqlnf/normalform/normal_forms.h"
#include "sqlnf/reasoning/implication.h"

namespace sqlnf {

namespace {

// Enumerates all subsets of `mask` in an order where every proper subset
// precedes its supersets is NOT guaranteed by the (x-mask)&mask trick;
// we instead collect subsets and sort by popcount when needed.
std::vector<uint64_t> SubsetsOf(uint64_t mask) {
  std::vector<uint64_t> out;
  uint64_t x = 0;
  while (true) {
    out.push_back(x);
    if (x == mask) break;
    x = (x - mask) & mask;
  }
  return out;
}

}  // namespace

Result<ConstraintSet> ProjectSigma(const TableSchema& schema,
                                   const ConstraintSet& sigma,
                                   const AttributeSet& x,
                                   const ProjectionOptions& options) {
  if (!x.IsSubsetOf(schema.all())) {
    return Status::Invalid("projection set is not a subset of the schema");
  }
  if (x.size() > options.max_attributes) {
    return Status::OutOfRange(
        "projection onto " + std::to_string(x.size()) +
        " attributes exceeds limit " +
        std::to_string(options.max_attributes) +
        " (2^|X| closures needed; the problem is co-NP-complete)");
  }

  Implication imp(schema, sigma);
  const AttributeSet nfs = schema.nfs();
  ConstraintSet out;

  // FD cover: keep Y ⊆ X when removing any single attribute of Y
  // strictly shrinks the X-restricted closure (LHS-minimality); the RHS
  // is the maximal implied one.
  for (uint64_t bits : SubsetsOf(x.bits())) {
    AttributeSet y = AttributeSet::FromBits(bits);

    AttributeSet p_rhs = imp.PClosure(y).Intersect(x);
    bool p_minimal = true;
    for (AttributeId a : y) {
      AttributeSet smaller = y;
      smaller.Remove(a);
      if (imp.PClosure(smaller).Intersect(x) == p_rhs) {
        p_minimal = false;
        break;
      }
    }
    if (p_minimal) {
      FunctionalDependency fd = FunctionalDependency::Possible(y, p_rhs);
      if (!(options.drop_trivial && fd.IsTrivial(nfs)) && !fd.rhs.empty()) {
        out.AddUniqueFd(fd);
      }
    }

    AttributeSet c_rhs = imp.CClosure(y).Intersect(x);
    bool c_minimal = true;
    for (AttributeId a : y) {
      AttributeSet smaller = y;
      smaller.Remove(a);
      if (imp.CClosure(smaller).Intersect(x) == c_rhs) {
        c_minimal = false;
        break;
      }
    }
    if (c_minimal) {
      FunctionalDependency fd = FunctionalDependency::Certain(y, c_rhs);
      if (!(options.drop_trivial && fd.IsTrivial(nfs)) && !fd.rhs.empty()) {
        out.AddUniqueFd(fd);
      }
    }
  }

  // Key cover: minimal implied keys inside X, per mode.
  for (Mode mode : {Mode::kPossible, Mode::kCertain}) {
    std::vector<AttributeSet> minimal;
    std::vector<uint64_t> subsets = SubsetsOf(x.bits());
    std::sort(subsets.begin(), subsets.end(),
              [](uint64_t a, uint64_t b) {
                int pa = std::popcount(a), pb = std::popcount(b);
                return pa != pb ? pa < pb : a < b;
              });
    for (uint64_t bits : subsets) {
      AttributeSet y = AttributeSet::FromBits(bits);
      bool covered = false;
      for (const AttributeSet& m : minimal) {
        if (m.IsSubsetOf(y)) {
          covered = true;
          break;
        }
      }
      if (covered) continue;
      KeyConstraint key{y, mode};
      if (imp.Implies(key)) {
        minimal.push_back(y);
        out.AddUniqueKey(key);
      }
    }
  }
  return out;
}

Result<SchemaDesign> ProjectDesign(const TableSchema& schema,
                                   const ConstraintSet& sigma,
                                   const AttributeSet& x,
                                   std::string new_name,
                                   const ProjectionOptions& options) {
  SQLNF_ASSIGN_OR_RETURN(ConstraintSet cover,
                         ProjectSigma(schema, sigma, x, options));
  SQLNF_ASSIGN_OR_RETURN(TableSchema projected,
                         schema.Project(x, std::move(new_name)));

  // Renumber attribute ids: old id -> position within ascending x.
  std::map<AttributeId, AttributeId> renumber;
  AttributeId next = 0;
  for (AttributeId a : x) renumber[a] = next++;
  auto map_set = [&](const AttributeSet& s) {
    AttributeSet out_set;
    for (AttributeId a : s) out_set.Add(renumber.at(a));
    return out_set;
  };

  ConstraintSet translated;
  for (const auto& fd : cover.fds()) {
    translated.AddFd({map_set(fd.lhs), map_set(fd.rhs), fd.mode});
  }
  for (const auto& key : cover.keys()) {
    translated.AddKey({map_set(key.attrs), key.mode});
  }
  return SchemaDesign{std::move(projected), std::move(translated)};
}

Result<bool> IsProjectionBcnf(const TableSchema& schema,
                              const ConstraintSet& sigma,
                              const AttributeSet& x,
                              const ProjectionOptions& options) {
  SQLNF_ASSIGN_OR_RETURN(SchemaDesign projected,
                         ProjectDesign(schema, sigma, x, "proj", options));
  return IsBcnf(projected);
}

Result<bool> IsProjectionSqlBcnf(const TableSchema& schema,
                                 const ConstraintSet& sigma,
                                 const AttributeSet& x,
                                 const ProjectionOptions& options) {
  SQLNF_ASSIGN_OR_RETURN(SchemaDesign projected,
                         ProjectDesign(schema, sigma, x, "proj", options));
  // Keep only the certain constraints of the cover (SQL-BCNF's class);
  // derived possible constraints do not participate in Definition 12.
  ConstraintSet certain_only;
  for (const auto& fd : projected.sigma.fds()) {
    if (fd.is_certain()) certain_only.AddFd(fd);
  }
  for (const auto& key : projected.sigma.keys()) {
    if (key.is_certain()) certain_only.AddKey(key);
  }
  return IsSqlBcnf({projected.table, certain_only});
}

}  // namespace sqlnf
