// Schema projection (T, T_S, Σ) ↦ (X, X ∩ T_S, Σ[X]).
//
// Σ[X] = {Y → Z ∈ Σ+ | YZ ⊆ X} ∪ {(p/c)⟨Y⟩ ∈ Σ+ | Y ⊆ X}  (paper §5.1).
//
// We compute a finite COVER of Σ[X]: LHS-minimal FDs with maximal RHS
// (Y → (Y* ∩ X) for each kept Y), plus the minimal implied keys inside
// X. The cover is equivalent to Σ[X] over the projected schema: every
// member of Σ[X] follows from it by L-augmentation and decomposition,
// and every cover member is in Σ[X] by construction.
//
// Deciding BCNF / SQL-BCNF of a projection is co-NP-complete (Theorems
// 8 and 17); accordingly this enumeration is exponential in |X| and is
// guarded by a size limit.

#ifndef SQLNF_NORMALFORM_PROJECTION_H_
#define SQLNF_NORMALFORM_PROJECTION_H_

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

struct ProjectionOptions {
  /// Refuse to enumerate when |X| exceeds this (2^|X| closures needed).
  int max_attributes = 22;
  /// Drop trivial FDs from the cover (they carry no information).
  bool drop_trivial = true;
};

/// A cover of Σ[X] over the ORIGINAL schema's attribute ids (attributes
/// keep their ids; use TableSchema::Project to renumber if desired).
Result<ConstraintSet> ProjectSigma(const TableSchema& schema,
                                   const ConstraintSet& sigma,
                                   const AttributeSet& x,
                                   const ProjectionOptions& options = {});

/// The fully projected design (X renumbered, NFS = X ∩ T_S, Σ[X] cover
/// translated to the new ids).
Result<SchemaDesign> ProjectDesign(const TableSchema& schema,
                                   const ConstraintSet& sigma,
                                   const AttributeSet& x,
                                   std::string new_name,
                                   const ProjectionOptions& options = {});

/// Decides whether the projection of (T, T_S, Σ) onto X is in BCNF —
/// the problem Theorem 8 shows co-NP-complete (hence the exponential
/// cover computation inside).
Result<bool> IsProjectionBcnf(const TableSchema& schema,
                              const ConstraintSet& sigma,
                              const AttributeSet& x,
                              const ProjectionOptions& options = {});

/// Same for SQL-BCNF (Theorem 17). Requires a certain-only Σ.
Result<bool> IsProjectionSqlBcnf(const TableSchema& schema,
                                 const ConstraintSet& sigma,
                                 const AttributeSet& x,
                                 const ProjectionOptions& options = {});

}  // namespace sqlnf

#endif  // SQLNF_NORMALFORM_PROJECTION_H_
