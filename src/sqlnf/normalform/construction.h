// The Construction Lemma (Lemma 2): canonical two-tuple witnesses.
//
// Given Σ ⊭ p⟨X⟩ (resp. Σ ⊭ c⟨X⟩), the lemma constructs a two-tuple
// instance {t0, t1} over (T, T_S) that satisfies Σ while violating the
// key — and, when the missing key comes from a BCNF violation, the
// instance exhibits a redundant position. These witnesses power the
// semantic justification RFNF ⟺ BCNF (Theorem 9) and our property tests.
//
//   (i)  Σ ⊭ p⟨X⟩:  t_i[A] = 0 if A ∈ X*p ∩ (X ∪ T_S)
//                    t_i[A] = ⊥ if A ∈ X*p − (X ∪ T_S)
//                    t_i[A] = i otherwise
//   (ii) Σ ⊭ c⟨X⟩:  t_i[A] = 0 if A ∈ (X ∪ X*c) ∩ T_S
//                    t_i[A] = ⊥ if A ∈ (X ∪ X*c) − T_S
//                    t_i[A] = i otherwise

#ifndef SQLNF_NORMALFORM_CONSTRUCTION_H_
#define SQLNF_NORMALFORM_CONSTRUCTION_H_

#include <optional>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/core/table.h"
#include "sqlnf/normalform/redundancy.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// Lemma 2(i): a two-tuple instance over (T, T_S) that satisfies Σ and
/// violates p⟨X⟩. Requires Σ ⊭ p⟨X⟩ (FailedPrecondition otherwise).
Result<Table> PKeyViolationWitness(const SchemaDesign& design,
                                   const AttributeSet& x);

/// Lemma 2(ii): a two-tuple instance that satisfies Σ and violates c⟨X⟩.
/// Requires Σ ⊭ c⟨X⟩.
Result<Table> CKeyViolationWitness(const SchemaDesign& design,
                                   const AttributeSet& x);

/// Completeness witnesses for FDs: a two-tuple instance over (T, T_S)
/// satisfying Σ and violating the given non-implied FD. The p-FD
/// pattern is Lemma 2(i)'s (shared on X*p, split by T_S ∪ X); the c-FD
/// pattern additionally stores ⊥ against a value on the nullable LHS
/// attributes outside X*c, which keeps the pair weakly similar on X
/// while breaking equality. Requires Σ ⊭ fd (FailedPrecondition
/// otherwise).
Result<Table> FdViolationWitness(const SchemaDesign& design,
                                 const FunctionalDependency& fd);

/// Counterexample for any non-implied constraint: an instance over
/// (T, T_S, Σ) violating it. This is the semantic "completeness" half
/// of Theorems 1 and 4, made executable.
Result<Table> CounterExample(const SchemaDesign& design,
                             const Constraint& constraint);

/// For a design that violates BCNF: an instance over (T, T_S, Σ) with at
/// least one redundant position, plus one such position. Returns
/// FailedPrecondition when the design is in BCNF (no such instance
/// exists, by Theorem 9).
struct RedundancyWitness {
  Table instance;
  Position position;
};
Result<RedundancyWitness> MakeRedundancyWitness(const SchemaDesign& design);

}  // namespace sqlnf

#endif  // SQLNF_NORMALFORM_CONSTRUCTION_H_
