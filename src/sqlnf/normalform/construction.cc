#include "sqlnf/normalform/construction.h"

#include "sqlnf/normalform/normal_forms.h"

namespace sqlnf {

namespace {

// Builds the two-tuple instance with value 0 on `shared`, ⊥ in both
// rows on `nulled`, ⊥-vs-1 on `half_nulled`, and per-tuple distinct
// values elsewhere. The four regions must be pairwise disjoint.
Table BuildTwoTupleWitness(const TableSchema& schema,
                           const AttributeSet& shared,
                           const AttributeSet& nulled,
                           const AttributeSet& half_nulled = {}) {
  Table out(schema);
  for (int i = 0; i < 2; ++i) {
    std::vector<Value> row(schema.num_attributes());
    for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
      if (shared.Contains(a)) {
        row[a] = Value::Int(0);
      } else if (nulled.Contains(a)) {
        row[a] = Value::Null();
      } else if (half_nulled.Contains(a)) {
        row[a] = i == 0 ? Value::Null() : Value::Int(1);
      } else {
        row[a] = Value::Int(i + 1);  // distinct per tuple, never 0
      }
    }
    Status st = out.AddRow(Tuple(std::move(row)));
    (void)st;  // arity matches by construction
  }
  return out;
}

}  // namespace

Result<Table> PKeyViolationWitness(const SchemaDesign& design,
                                   const AttributeSet& x) {
  Implication imp(design.table, design.sigma);
  if (imp.Implies(KeyConstraint::Possible(x))) {
    return Status::FailedPrecondition(
        "Lemma 2(i) requires that p<X> is NOT implied by Sigma");
  }
  const AttributeSet xp = imp.PClosure(x);
  const AttributeSet x_or_nfs = x.Union(design.table.nfs());
  return BuildTwoTupleWitness(design.table, xp.Intersect(x_or_nfs),
                              xp.Difference(x_or_nfs));
}

Result<Table> CKeyViolationWitness(const SchemaDesign& design,
                                   const AttributeSet& x) {
  Implication imp(design.table, design.sigma);
  if (imp.Implies(KeyConstraint::Certain(x))) {
    return Status::FailedPrecondition(
        "Lemma 2(ii) requires that c<X> is NOT implied by Sigma");
  }
  const AttributeSet xxc = x.Union(imp.CClosure(x));
  return BuildTwoTupleWitness(design.table,
                              xxc.Intersect(design.table.nfs()),
                              xxc.Difference(design.table.nfs()));
}

Result<Table> FdViolationWitness(const SchemaDesign& design,
                                 const FunctionalDependency& fd) {
  Implication imp(design.table, design.sigma);
  if (imp.Implies(fd)) {
    return Status::FailedPrecondition(
        "FD violation witness requires that the FD is NOT implied");
  }
  const AttributeSet nfs = design.table.nfs();
  if (fd.is_possible()) {
    // Lemma 2(i) pattern: the pair is strongly similar on X ⊆ X*p and
    // equal on all of X*p, so Σ holds; any Y-attribute outside X*p
    // splits.
    const AttributeSet xp = imp.PClosure(fd.lhs);
    const AttributeSet x_or_nfs = fd.lhs.Union(nfs);
    return BuildTwoTupleWitness(design.table, xp.Intersect(x_or_nfs),
                                xp.Difference(x_or_nfs));
  }
  // Certain pattern: equal on X*c (0 on NOT NULL, ⊥⊥ otherwise), and
  // ⊥-vs-value on the nullable LHS attributes outside X*c — weakly
  // similar but unequal, which is what defeats internal c-FDs like
  // a ->w a on nullable a. Σ stays satisfied: the pair's weak-agreement
  // set is X ∪ X*c and its strong-agreement set is X*c ∩ T_S, exactly
  // the firing conditions of Algorithm 2.
  const AttributeSet xc = imp.CClosure(fd.lhs);
  return BuildTwoTupleWitness(design.table, xc.Intersect(nfs),
                              xc.Difference(nfs),
                              fd.lhs.Difference(xc));
}

Result<Table> CounterExample(const SchemaDesign& design,
                             const Constraint& constraint) {
  if (const auto* fd = std::get_if<FunctionalDependency>(&constraint)) {
    return FdViolationWitness(design, *fd);
  }
  const KeyConstraint& key = std::get<KeyConstraint>(constraint);
  return key.is_possible() ? PKeyViolationWitness(design, key.attrs)
                           : CKeyViolationWitness(design, key.attrs);
}

Result<RedundancyWitness> MakeRedundancyWitness(const SchemaDesign& design) {
  std::optional<NormalFormViolation> violation = FindBcnfViolation(design);
  if (!violation.has_value()) {
    return Status::FailedPrecondition(
        "schema is in BCNF, hence in RFNF (Theorem 9): no instance with "
        "a redundant position exists");
  }
  const FunctionalDependency& fd = violation->fd;
  const AttributeSet nfs = design.table.nfs();

  Table witness(design.table);
  AttributeSet candidates;  // positions made redundant by fd
  if (fd.is_possible()) {
    SQLNF_ASSIGN_OR_RETURN(witness, PKeyViolationWitness(design, fd.lhs));
    candidates = fd.rhs.Difference(fd.lhs);
  } else {
    SQLNF_ASSIGN_OR_RETURN(witness, CKeyViolationWitness(design, fd.lhs));
    candidates = fd.rhs.Difference(fd.lhs.Intersect(nfs));
  }
  if (candidates.empty()) {
    return Status::Internal("non-trivial FD with no candidate position");
  }
  AttributeId column = *candidates.begin();
  return RedundancyWitness{std::move(witness), Position{0, column}};
}

}  // namespace sqlnf
