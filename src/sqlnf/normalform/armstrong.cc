#include "sqlnf/normalform/armstrong.h"

#include <set>

#include "sqlnf/reasoning/closure.h"

namespace sqlnf {

Result<Table> BuildArmstrongRelation(const SchemaDesign& design,
                                     const ArmstrongOptions& options) {
  const TableSchema& schema = design.table;
  if (!(schema.nfs() == schema.all())) {
    return Status::Invalid(
        "Armstrong relations are built for the idealized case T_S = T; "
        "use CounterExample() for per-constraint witnesses on general "
        "SQL schemata");
  }
  const int n = schema.num_attributes();
  if (n > options.max_attributes) {
    return Status::OutOfRange("Armstrong construction is exponential; " +
                              std::to_string(n) + " attributes exceed " +
                              std::to_string(options.max_attributes));
  }

  ConstraintSet fds = design.sigma.FdProjection(schema.all());
  ClosureEngine engine(fds, schema.nfs());
  // With T_S = T the p- and c-closures coincide; collect the distinct
  // closures of all subsets.
  std::set<AttributeSet> closures;
  const uint64_t full = schema.all().bits();
  for (uint64_t bits = 0;; bits = (bits - full) & full) {
    closures.insert(engine.PClosure(AttributeSet::FromBits(bits)));
    if (bits == full) break;
  }

  const AttributeSet constant = engine.PClosure(AttributeSet());
  Table out(schema);
  int64_t next_value = 1;
  for (const AttributeSet& closure : closures) {
    if (closure == schema.all()) {
      // A block agreeing on everything would be a duplicate pair; one
      // representative total tuple suffices (added below as part of
      // some other block's tuples is not guaranteed, so add one).
      continue;
    }
    // Two tuples agreeing exactly on `closure` (block-local shared
    // values; globally shared on closure(∅)).
    std::vector<Value> row0(n), row1(n);
    for (AttributeId a = 0; a < n; ++a) {
      if (constant.Contains(a)) {
        row0[a] = row1[a] = Value::Int(0);
      } else if (closure.Contains(a)) {
        row0[a] = row1[a] = Value::Int(next_value);
      } else {
        row0[a] = Value::Int(next_value + 1);
        row1[a] = Value::Int(next_value + 2);
      }
    }
    next_value += 3;
    SQLNF_RETURN_NOT_OK(out.AddRow(Tuple(std::move(row0))));
    SQLNF_RETURN_NOT_OK(out.AddRow(Tuple(std::move(row1))));
  }
  if (out.num_rows() == 0) {
    // Σ implies every FD (closure(X) = T for all X): any single total
    // tuple is Armstrong.
    std::vector<Value> row(n, Value::Int(0));
    SQLNF_RETURN_NOT_OK(out.AddRow(Tuple(std::move(row))));
  }
  return out;
}

}  // namespace sqlnf
