// Syntactic normal forms and their decision procedures.
//
//   BCNF     (Definition 5, decided via Theorem 6): every non-trivial
//            p-FD in Σ has an implied p-key LHS, every non-trivial c-FD
//            an implied c-key LHS. Quadratic (Theorem 7).
//   RFNF     (Definition 4): all instances redundancy-free. Equals BCNF
//            (Theorem 9), hence also quadratic (Theorem 10).
//   SQL-BCNF (Definition 12, decided via Theorem 14): Σ of c-FDs and
//            c-keys; every EXTERNAL c-FD in Σ has an implied c-key LHS.
//   VRNF     (Definition 10): all instances free of value redundancy.
//            Equals SQL-BCNF (Theorem 15).
//
// Both conditions are invariant under equivalent representations of Σ,
// which is why checking the *given* FDs suffices (Theorems 6/14).

#ifndef SQLNF_NORMALFORM_NORMAL_FORMS_H_
#define SQLNF_NORMALFORM_NORMAL_FORMS_H_

#include <optional>
#include <string>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/reasoning/implication.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// Why a schema fails BCNF / SQL-BCNF: the offending FD and the key that
/// would have been required but is not implied.
struct NormalFormViolation {
  FunctionalDependency fd;
  KeyConstraint missing_key;

  std::string ToString(const TableSchema& schema) const;
};

/// First BCNF violation per Theorem 6, or nullopt when in BCNF.
std::optional<NormalFormViolation> FindBcnfViolation(
    const SchemaDesign& design);

/// Definition 5 via Theorem 6; quadratic in the input (Theorem 7).
bool IsBcnf(const SchemaDesign& design);

/// Redundancy-free normal form — equal to BCNF by Theorem 9.
bool IsRfnf(const SchemaDesign& design);

/// First SQL-BCNF violation per Theorem 14, or nullopt. Fails
/// (InvalidArgument) when Σ contains possible constraints — Definition
/// 12 is stated for c-FDs and c-keys.
Result<std::optional<NormalFormViolation>> FindSqlBcnfViolation(
    const SchemaDesign& design);

/// Definition 12 via Theorem 14; quadratic in the input.
Result<bool> IsSqlBcnf(const SchemaDesign& design);

/// Value-redundancy-free normal form — equal to SQL-BCNF by Theorem 15.
Result<bool> IsVrnf(const SchemaDesign& design);

/// The idealized relational special case (paper §5.1): all attributes
/// NOT NULL and some key implied. In that case BCNF here reduces to
/// classical Boyce-Codd normal form.
bool IsIdealizedRelationalCase(const SchemaDesign& design);

}  // namespace sqlnf

#endif  // SQLNF_NORMALFORM_NORMAL_FORMS_H_
