// Instance-level data redundancy (Definitions 4 and 10).
//
// A position p0 (row, column) of instance I over (T, T_S, Σ) is
// REDUNDANT when I has no p0-value substitution: no instance I' over
// (T, T_S, Σ) differing from I exactly at p0. It is VALUE REDUNDANT when
// it is redundant and its value is not ⊥.
//
// Deciding redundancy requires quantifying over infinite domains; we use
// the standard genericity argument: constraint satisfaction depends only
// on the equality pattern of values within each column, so it suffices
// to try (a) ⊥ when the column is nullable, (b) one globally fresh
// value, and (c) every other distinct value already occurring in the
// same column. If none yields a satisfying instance, no substitution
// exists at all.
//
// These checkers are the semantic ground truth behind RFNF/VRNF; they
// are O(candidates · n² · |Σ|) per position and are meant for the small
// instances used in tests/examples. Decomposition reports use closed
// formulas instead (decomposition/report.h).

#ifndef SQLNF_NORMALFORM_REDUNDANCY_H_
#define SQLNF_NORMALFORM_REDUNDANCY_H_

#include <vector>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/core/table.h"

namespace sqlnf {

/// A cell coordinate in an instance.
struct Position {
  int row = 0;
  AttributeId column = 0;

  bool operator==(const Position&) const = default;
};

/// Definition 4. Precondition: `table` satisfies `sigma` and its NFS
/// (otherwise the notion is vacuous — every position trivially lacks a
/// substitution within the constraint-satisfying instance space).
bool IsRedundantPosition(const Table& table, const ConstraintSet& sigma,
                         const Position& pos);

/// Definition 10: redundant and not ⊥.
bool IsValueRedundantPosition(const Table& table, const ConstraintSet& sigma,
                              const Position& pos);

/// All redundant positions of the instance (row-major order).
std::vector<Position> RedundantPositions(const Table& table,
                                         const ConstraintSet& sigma);

/// All value-redundant positions of the instance.
std::vector<Position> ValueRedundantPositions(const Table& table,
                                              const ConstraintSet& sigma);

/// I is redundancy-free (Definition 4).
bool IsRedundancyFreeInstance(const Table& table,
                              const ConstraintSet& sigma);

/// I is free from value redundancy (Definition 10).
bool IsValueRedundancyFreeInstance(const Table& table,
                                   const ConstraintSet& sigma);

}  // namespace sqlnf

#endif  // SQLNF_NORMALFORM_REDUNDANCY_H_
