// Armstrong relations for the idealized relational special case.
//
// An Armstrong relation for (T, Σ) satisfies exactly the FDs implied by
// Σ: every non-implied FD is violated by some tuple pair. They are the
// classical tool for communicating constraint sets by example
// [Armstrong'74; Mannila/Räihä]. For the paper's full SQL class
// (duplicates + ⊥) single perfect instances need not exist — the
// per-constraint counterexamples of construction.h cover that need —
// so this builder requires T_S = T (p/c notions coincide) and targets
// FDs only.
//
// Construction: one two-tuple block per distinct closure of a subset of
// T, the block agreeing exactly on that closure; blocks use disjoint
// value ranges except for attributes in closure(∅), which are globally
// constant. Exponential in |T| (guarded).

#ifndef SQLNF_NORMALFORM_ARMSTRONG_H_
#define SQLNF_NORMALFORM_ARMSTRONG_H_

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/core/table.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

struct ArmstrongOptions {
  int max_attributes = 16;  // 2^|T| closures
};

/// Builds a (duplicate-free, total) Armstrong relation for the FDs of
/// `design` (keys are folded in as FDs X → T). Requires T_S = T.
Result<Table> BuildArmstrongRelation(const SchemaDesign& design,
                                     const ArmstrongOptions& options = {});

}  // namespace sqlnf

#endif  // SQLNF_NORMALFORM_ARMSTRONG_H_
