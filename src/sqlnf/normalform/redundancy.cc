#include "sqlnf/normalform/redundancy.h"

#include <string>

#include "sqlnf/constraints/satisfies.h"

namespace sqlnf {

namespace {

// A value guaranteed not to occur anywhere in `table` (genericity proxy
// for "any domain value not mentioned in I").
Value FreshValue(const Table& table) {
  std::string candidate = "__fresh__";
  bool collision = true;
  while (collision) {
    collision = false;
    for (const Tuple& t : table.rows()) {
      for (const Value& v : t.values()) {
        if (!v.is_null() && v.kind() == Value::Kind::kString &&
            v.str_value() == candidate) {
          candidate += "_";
          collision = true;
          break;
        }
      }
      if (collision) break;
    }
  }
  return Value::Str(candidate);
}

}  // namespace

bool IsRedundantPosition(const Table& table, const ConstraintSet& sigma,
                         const Position& pos) {
  const Value current = table.row(pos.row)[pos.column];
  const bool nullable = !table.schema().nfs().Contains(pos.column);

  std::vector<Value> candidates;
  if (nullable && !current.is_null()) candidates.push_back(Value::Null());
  candidates.push_back(FreshValue(table));
  for (const Value& v : table.ColumnValues(pos.column)) {
    if (!(v == current)) candidates.push_back(v);
  }

  Table probe = table;
  for (const Value& candidate : candidates) {
    (*probe.mutable_row(pos.row))[pos.column] = candidate;
    if (!FindViolation(probe, sigma).has_value()) {
      return false;  // found a p0-value substitution
    }
  }
  return true;
}

bool IsValueRedundantPosition(const Table& table, const ConstraintSet& sigma,
                              const Position& pos) {
  if (table.row(pos.row)[pos.column].is_null()) return false;
  return IsRedundantPosition(table, sigma, pos);
}

std::vector<Position> RedundantPositions(const Table& table,
                                         const ConstraintSet& sigma) {
  std::vector<Position> out;
  for (int r = 0; r < table.num_rows(); ++r) {
    for (AttributeId c = 0; c < table.num_columns(); ++c) {
      Position pos{r, c};
      if (IsRedundantPosition(table, sigma, pos)) out.push_back(pos);
    }
  }
  return out;
}

std::vector<Position> ValueRedundantPositions(const Table& table,
                                              const ConstraintSet& sigma) {
  std::vector<Position> out;
  for (const Position& pos : RedundantPositions(table, sigma)) {
    if (!table.row(pos.row)[pos.column].is_null()) out.push_back(pos);
  }
  return out;
}

bool IsRedundancyFreeInstance(const Table& table,
                              const ConstraintSet& sigma) {
  return RedundantPositions(table, sigma).empty();
}

bool IsValueRedundancyFreeInstance(const Table& table,
                                   const ConstraintSet& sigma) {
  return ValueRedundantPositions(table, sigma).empty();
}

}  // namespace sqlnf
