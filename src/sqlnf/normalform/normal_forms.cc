#include "sqlnf/normalform/normal_forms.h"

namespace sqlnf {

std::string NormalFormViolation::ToString(const TableSchema& schema) const {
  return "FD " + fd.ToString(schema) + " holds but key " +
         missing_key.ToString(schema) + " is not implied";
}

std::optional<NormalFormViolation> FindBcnfViolation(
    const SchemaDesign& design) {
  Implication imp(design.table, design.sigma);
  const AttributeSet nfs = design.table.nfs();
  for (const auto& fd : design.sigma.fds()) {
    if (fd.IsTrivial(nfs)) continue;
    KeyConstraint required{fd.lhs, fd.mode};
    if (!imp.Implies(required)) {
      return NormalFormViolation{fd, required};
    }
  }
  return std::nullopt;
}

bool IsBcnf(const SchemaDesign& design) {
  return !FindBcnfViolation(design).has_value();
}

bool IsRfnf(const SchemaDesign& design) { return IsBcnf(design); }

Result<std::optional<NormalFormViolation>> FindSqlBcnfViolation(
    const SchemaDesign& design) {
  if (!design.sigma.AllCertain()) {
    return Status::Invalid(
        "SQL-BCNF (Definition 12) is defined for constraint sets of "
        "certain FDs and certain keys only");
  }
  Implication imp(design.table, design.sigma);
  for (const auto& fd : design.sigma.fds()) {
    if (fd.IsInternal()) continue;  // internal c-FDs are exempt
    KeyConstraint required = KeyConstraint::Certain(fd.lhs);
    if (!imp.Implies(required)) {
      return std::optional<NormalFormViolation>(
          NormalFormViolation{fd, required});
    }
  }
  return std::optional<NormalFormViolation>(std::nullopt);
}

Result<bool> IsSqlBcnf(const SchemaDesign& design) {
  SQLNF_ASSIGN_OR_RETURN(auto violation, FindSqlBcnfViolation(design));
  return !violation.has_value();
}

Result<bool> IsVrnf(const SchemaDesign& design) {
  return IsSqlBcnf(design);
}

bool IsIdealizedRelationalCase(const SchemaDesign& design) {
  if (!(design.table.nfs() == design.table.all())) return false;
  Implication imp(design.table, design.sigma);
  // "Some key holds": the whole schema forms a certain key.
  return imp.Implies(KeyConstraint::Certain(design.table.all()));
}

}  // namespace sqlnf
