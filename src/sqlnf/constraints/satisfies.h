// Reference satisfaction checkers (Definition 1 and the key definitions),
// implemented exactly as the paper states them: a quantifier over all
// tuple pairs. These are the O(n²) ground truth; engine/validate.h holds
// the grouped fast path used for large instances, and property tests
// cross-check the two.

#ifndef SQLNF_CONSTRAINTS_SATISFIES_H_
#define SQLNF_CONSTRAINTS_SATISFIES_H_

#include <optional>
#include <string>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/core/table.h"

namespace sqlnf {

/// A witness of a constraint violation: the two offending row indices
/// (equal only for NFS violations, where `attribute` names the column).
struct Violation {
  int row1 = -1;
  int row2 = -1;
  std::optional<Constraint> constraint;
  std::optional<AttributeId> attribute;  // set for NFS violations

  std::string ToString(const TableSchema& schema) const;
};

/// I ⊢ X →s Y / X →w Y (Definition 1).
bool Satisfies(const Table& table, const FunctionalDependency& fd);

/// I ⊢ p⟨X⟩ / c⟨X⟩: no two rows with distinct identities strongly /
/// weakly similar on X. Duplicate rows violate every key (paper, Fig. 3).
bool Satisfies(const Table& table, const KeyConstraint& key);

bool Satisfies(const Table& table, const Constraint& c);

/// I satisfies every constraint in Σ AND the NFS of its schema.
bool SatisfiesAll(const Table& table, const ConstraintSet& sigma);

/// First violation found (NFS first, then Σ in order), or nullopt.
std::optional<Violation> FindViolation(const Table& table,
                                       const ConstraintSet& sigma);

/// Violation witness for one FD, or nullopt.
std::optional<Violation> FindFdViolation(const Table& table,
                                         const FunctionalDependency& fd);

/// Violation witness for one key, or nullopt.
std::optional<Violation> FindKeyViolation(const Table& table,
                                          const KeyConstraint& key);

}  // namespace sqlnf

#endif  // SQLNF_CONSTRAINTS_SATISFIES_H_
