// Constraint classes of the paper: possible/certain functional
// dependencies (Definition 1), possible/certain keys [Köhler/Link/Zhou
// PVLDB'15], bundled into constraint sets Σ over a schema (T, T_S).
//
//   p-FD  X →s Y : strong agreement on X implies equality on Y
//   c-FD  X →w Y : weak agreement on X implies equality on Y
//   p-key p⟨X⟩   : no two distinct rows strongly similar on X
//   c-key c⟨X⟩   : no two distinct rows weakly similar on X
//
// NOT NULL constraints are carried by TableSchema::nfs(), not by Σ.

#ifndef SQLNF_CONSTRAINTS_CONSTRAINT_H_
#define SQLNF_CONSTRAINTS_CONSTRAINT_H_

#include <string>
#include <variant>
#include <vector>

#include "sqlnf/core/attribute_set.h"
#include "sqlnf/core/schema.h"

namespace sqlnf {

/// The possible/certain split. Possible constraints trigger on strong
/// similarity (subscript s), certain ones on weak similarity (w).
enum class Mode : uint8_t { kPossible, kCertain };

/// "s" / "w" (FD arrow subscripts); "p" / "c" for keys.
const char* ModeArrowSuffix(Mode mode);
const char* ModeKeyPrefix(Mode mode);

/// A possible or certain functional dependency X → Y over a schema.
struct FunctionalDependency {
  AttributeSet lhs;
  AttributeSet rhs;
  Mode mode = Mode::kCertain;

  static FunctionalDependency Possible(AttributeSet x, AttributeSet y) {
    return {x, y, Mode::kPossible};
  }
  static FunctionalDependency Certain(AttributeSet x, AttributeSet y) {
    return {x, y, Mode::kCertain};
  }

  bool is_possible() const { return mode == Mode::kPossible; }
  bool is_certain() const { return mode == Mode::kCertain; }

  /// Internal FD (Definition 11): Y ⊆ X. Non-internal FDs are external.
  bool IsInternal() const { return rhs.IsSubsetOf(lhs); }

  /// Total FD (Definition 9): a certain FD of the form X →w XY, i.e.
  /// one whose RHS contains its LHS.
  bool IsTotal() const { return is_certain() && lhs.IsSubsetOf(rhs); }

  /// Trivial = satisfied by every instance over (T, T_S), equivalently
  /// implied by the empty constraint set:
  ///   p-FD X →s Y trivial  ⟺  Y ⊆ X
  ///   c-FD X →w Y trivial  ⟺  Y ⊆ X ∩ T_S
  /// (A certain FD with a nullable LHS attribute on its RHS is NOT
  /// trivial: ⊥ and a value weakly agree yet differ.)
  bool IsTrivial(const AttributeSet& nfs) const;

  bool operator==(const FunctionalDependency&) const = default;
  bool operator<(const FunctionalDependency& other) const;

  /// e.g. "{item,catalog} ->w {price}".
  std::string ToString(const TableSchema& schema) const;
};

/// A possible or certain key p⟨X⟩ / c⟨X⟩ over a schema.
struct KeyConstraint {
  AttributeSet attrs;
  Mode mode = Mode::kCertain;

  static KeyConstraint Possible(AttributeSet x) {
    return {x, Mode::kPossible};
  }
  static KeyConstraint Certain(AttributeSet x) {
    return {x, Mode::kCertain};
  }

  bool is_possible() const { return mode == Mode::kPossible; }
  bool is_certain() const { return mode == Mode::kCertain; }

  bool operator==(const KeyConstraint&) const = default;
  bool operator<(const KeyConstraint& other) const;

  /// e.g. "c<{item,catalog}>".
  std::string ToString(const TableSchema& schema) const;
};

/// Either constraint kind, for APIs that accept both.
using Constraint = std::variant<FunctionalDependency, KeyConstraint>;

std::string ConstraintToString(const Constraint& c,
                               const TableSchema& schema);

/// A constraint set Σ: FDs and keys over one schema.
///
/// Order is preserved (it is meaningful for covers and reports);
/// AddUnique* deduplicate.
class ConstraintSet {
 public:
  ConstraintSet() = default;

  void AddFd(FunctionalDependency fd) { fds_.push_back(fd); }
  void AddKey(KeyConstraint key) { keys_.push_back(key); }
  void Add(const Constraint& c);

  /// Adds only if not syntactically present already. Returns true when
  /// added.
  bool AddUniqueFd(const FunctionalDependency& fd);
  bool AddUniqueKey(const KeyConstraint& key);

  bool ContainsFd(const FunctionalDependency& fd) const;
  bool ContainsKey(const KeyConstraint& key) const;

  const std::vector<FunctionalDependency>& fds() const { return fds_; }
  const std::vector<KeyConstraint>& keys() const { return keys_; }
  std::vector<FunctionalDependency>* mutable_fds() { return &fds_; }
  std::vector<KeyConstraint>* mutable_keys() { return &keys_; }

  size_t size() const { return fds_.size() + keys_.size(); }
  bool empty() const { return fds_.empty() && keys_.empty(); }

  /// All constraints as variants, FDs first.
  std::vector<Constraint> All() const;

  /// The FD-projection Σ|FD (Definition 3): every key X is replaced by
  /// the FD X → T (p-key → p-FD, c-key → c-FD); FDs are kept.
  ConstraintSet FdProjection(const AttributeSet& all_attributes) const;

  /// The key-projection Σ|key (Definition 3): only the keys of Σ.
  ConstraintSet KeyProjection() const;

  /// Total size measure used for the linear-time bounds: the sum of
  /// attribute-set sizes over all constraints.
  int InputSize() const;

  /// True when only certain FDs / certain keys are present (the input
  /// class of Definition 12 and Algorithm 3 requires additionally that
  /// all FDs be total — see AllFdsTotal()).
  bool AllCertain() const;

  /// True when every FD is total (X →w XY, Definition 9).
  bool AllFdsTotal() const;

  std::string ToString(const TableSchema& schema) const;

 private:
  std::vector<FunctionalDependency> fds_;
  std::vector<KeyConstraint> keys_;
};

/// The paper's "schema" triple (T, T_S, Σ): a table schema with its
/// constraint set. T_S travels inside `table`.
struct SchemaDesign {
  TableSchema table;
  ConstraintSet sigma;

  std::string ToString() const;
};

}  // namespace sqlnf

#endif  // SQLNF_CONSTRAINTS_CONSTRAINT_H_
