#include "sqlnf/constraints/constraint.h"

#include <algorithm>
#include <tuple>

namespace sqlnf {

const char* ModeArrowSuffix(Mode mode) {
  return mode == Mode::kPossible ? "s" : "w";
}

const char* ModeKeyPrefix(Mode mode) {
  return mode == Mode::kPossible ? "p" : "c";
}

bool FunctionalDependency::IsTrivial(const AttributeSet& nfs) const {
  if (mode == Mode::kPossible) return rhs.IsSubsetOf(lhs);
  return rhs.IsSubsetOf(lhs.Intersect(nfs));
}

bool FunctionalDependency::operator<(
    const FunctionalDependency& other) const {
  return std::tie(mode, lhs, rhs) <
         std::tie(other.mode, other.lhs, other.rhs);
}

std::string FunctionalDependency::ToString(const TableSchema& schema) const {
  return schema.FormatSet(lhs) + " ->" + ModeArrowSuffix(mode) + " " +
         schema.FormatSet(rhs);
}

bool KeyConstraint::operator<(const KeyConstraint& other) const {
  return std::tie(mode, attrs) < std::tie(other.mode, other.attrs);
}

std::string KeyConstraint::ToString(const TableSchema& schema) const {
  return std::string(ModeKeyPrefix(mode)) + "<" + schema.FormatSet(attrs) +
         ">";
}

std::string ConstraintToString(const Constraint& c,
                               const TableSchema& schema) {
  if (const auto* fd = std::get_if<FunctionalDependency>(&c)) {
    return fd->ToString(schema);
  }
  return std::get<KeyConstraint>(c).ToString(schema);
}

void ConstraintSet::Add(const Constraint& c) {
  if (const auto* fd = std::get_if<FunctionalDependency>(&c)) {
    AddFd(*fd);
  } else {
    AddKey(std::get<KeyConstraint>(c));
  }
}

bool ConstraintSet::AddUniqueFd(const FunctionalDependency& fd) {
  if (ContainsFd(fd)) return false;
  fds_.push_back(fd);
  return true;
}

bool ConstraintSet::AddUniqueKey(const KeyConstraint& key) {
  if (ContainsKey(key)) return false;
  keys_.push_back(key);
  return true;
}

bool ConstraintSet::ContainsFd(const FunctionalDependency& fd) const {
  return std::find(fds_.begin(), fds_.end(), fd) != fds_.end();
}

bool ConstraintSet::ContainsKey(const KeyConstraint& key) const {
  return std::find(keys_.begin(), keys_.end(), key) != keys_.end();
}

std::vector<Constraint> ConstraintSet::All() const {
  std::vector<Constraint> out;
  out.reserve(size());
  for (const auto& fd : fds_) out.emplace_back(fd);
  for (const auto& key : keys_) out.emplace_back(key);
  return out;
}

ConstraintSet ConstraintSet::FdProjection(
    const AttributeSet& all_attributes) const {
  ConstraintSet out;
  for (const auto& fd : fds_) out.AddFd(fd);
  for (const auto& key : keys_) {
    out.AddFd({key.attrs, all_attributes, key.mode});
  }
  return out;
}

ConstraintSet ConstraintSet::KeyProjection() const {
  ConstraintSet out;
  for (const auto& key : keys_) out.AddKey(key);
  return out;
}

int ConstraintSet::InputSize() const {
  int n = 0;
  for (const auto& fd : fds_) n += fd.lhs.size() + fd.rhs.size();
  for (const auto& key : keys_) n += key.attrs.size();
  return n;
}

bool ConstraintSet::AllCertain() const {
  for (const auto& fd : fds_) {
    if (!fd.is_certain()) return false;
  }
  for (const auto& key : keys_) {
    if (!key.is_certain()) return false;
  }
  return true;
}

bool ConstraintSet::AllFdsTotal() const {
  for (const auto& fd : fds_) {
    if (!fd.IsTotal()) return false;
  }
  return true;
}

std::string ConstraintSet::ToString(const TableSchema& schema) const {
  std::string out = "{";
  bool first = true;
  for (const Constraint& c : All()) {
    if (!first) out += ", ";
    first = false;
    out += ConstraintToString(c, schema);
  }
  out += "}";
  return out;
}

std::string SchemaDesign::ToString() const {
  std::string out = table.name() + " = ";
  out += table.FormatSet(table.all());
  out += ", NOT NULL = " + table.FormatSet(table.nfs());
  out += ", Sigma = " + sigma.ToString(table);
  return out;
}

}  // namespace sqlnf
