#include "sqlnf/constraints/satisfies.h"

#include "sqlnf/core/similarity.h"

namespace sqlnf {

std::string Violation::ToString(const TableSchema& schema) const {
  if (attribute.has_value()) {
    return "row " + std::to_string(row1) + " is NULL in NOT NULL column '" +
           schema.attribute_name(*attribute) + "'";
  }
  std::string what = constraint.has_value()
                         ? ConstraintToString(*constraint, schema)
                         : "<unknown>";
  return "rows " + std::to_string(row1) + " and " + std::to_string(row2) +
         " violate " + what;
}

namespace {

bool LhsSimilar(const Tuple& t, const Tuple& u, const AttributeSet& x,
                Mode mode) {
  return mode == Mode::kPossible ? StronglySimilar(t, u, x)
                                 : WeaklySimilar(t, u, x);
}

}  // namespace

std::optional<Violation> FindFdViolation(const Table& table,
                                         const FunctionalDependency& fd) {
  const int n = table.num_rows();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const Tuple& t = table.row(i);
      const Tuple& u = table.row(j);
      if (LhsSimilar(t, u, fd.lhs, fd.mode) && !t.EqualOn(u, fd.rhs)) {
        return Violation{i, j, Constraint(fd), std::nullopt};
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> FindKeyViolation(const Table& table,
                                          const KeyConstraint& key) {
  const int n = table.num_rows();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (LhsSimilar(table.row(i), table.row(j), key.attrs, key.mode)) {
        return Violation{i, j, Constraint(key), std::nullopt};
      }
    }
  }
  return std::nullopt;
}

bool Satisfies(const Table& table, const FunctionalDependency& fd) {
  return !FindFdViolation(table, fd).has_value();
}

bool Satisfies(const Table& table, const KeyConstraint& key) {
  return !FindKeyViolation(table, key).has_value();
}

bool Satisfies(const Table& table, const Constraint& c) {
  if (const auto* fd = std::get_if<FunctionalDependency>(&c)) {
    return Satisfies(table, *fd);
  }
  return Satisfies(table, std::get<KeyConstraint>(c));
}

bool SatisfiesAll(const Table& table, const ConstraintSet& sigma) {
  return !FindViolation(table, sigma).has_value();
}

std::optional<Violation> FindViolation(const Table& table,
                                       const ConstraintSet& sigma) {
  // NFS first: a table over (T, T_S, Σ) must be T_S-total.
  for (int i = 0; i < table.num_rows(); ++i) {
    for (AttributeId a : table.schema().nfs()) {
      if (table.row(i)[a].is_null()) {
        return Violation{i, i, std::nullopt, a};
      }
    }
  }
  for (const auto& fd : sigma.fds()) {
    if (auto v = FindFdViolation(table, fd)) return v;
  }
  for (const auto& key : sigma.keys()) {
    if (auto v = FindKeyViolation(table, key)) return v;
  }
  return std::nullopt;
}

}  // namespace sqlnf
