// Text syntax for constraints, used by tests, examples, and tools.
//
// Grammar (whitespace-insensitive):
//   fd      := side "->s" side        (possible FD, strong LHS similarity)
//            | side "->w" side        (certain FD, weak LHS similarity)
//   key     := "p<" side ">" | "c<" side ">"
//   side    := "{}"                   (empty set)
//            | name ("," name)*       (comma-separated attribute names)
//            | word                   (each character one attribute, for
//                                      schemas with single-char names,
//                                      mirroring the paper's "oi ->s c")
//
// A comma-free word is first tried as a full attribute name; if that
// fails and every character names an attribute, it is expanded
// character-wise (compact notation).

#ifndef SQLNF_CONSTRAINTS_PARSER_H_
#define SQLNF_CONSTRAINTS_PARSER_H_

#include <string_view>
#include <vector>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// Parses an attribute-set term ("{}", "a,b,c", or compact "abc").
Result<AttributeSet> ParseAttributeSet(const TableSchema& schema,
                                       std::string_view text);

/// Parses one FD, e.g. "oi ->s c" or "item,catalog ->w price".
Result<FunctionalDependency> ParseFd(const TableSchema& schema,
                                     std::string_view text);

/// Parses one key, e.g. "p<oic>" or "c<item,catalog>".
Result<KeyConstraint> ParseKey(const TableSchema& schema,
                               std::string_view text);

/// Parses one constraint of either kind.
Result<Constraint> ParseConstraint(const TableSchema& schema,
                                   std::string_view text);

/// Parses a ';'-separated list of constraints into a set, e.g.
/// "oi ->s c; ic ->w p; p<oic>".
Result<ConstraintSet> ParseConstraintSet(const TableSchema& schema,
                                         std::string_view text);

}  // namespace sqlnf

#endif  // SQLNF_CONSTRAINTS_PARSER_H_
