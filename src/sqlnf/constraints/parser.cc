#include "sqlnf/constraints/parser.h"

#include <string>

#include "sqlnf/util/string_util.h"

namespace sqlnf {

Result<AttributeSet> ParseAttributeSet(const TableSchema& schema,
                                       std::string_view text) {
  std::string_view stripped = StripAsciiWhitespace(text);
  if (stripped == "{}") return AttributeSet();
  if (stripped.empty()) {
    return Status::ParseError("empty attribute-set term (use {} for the "
                              "empty set)");
  }
  // Strip optional braces around a comma list: "{a,b}".
  if (stripped.front() == '{' && stripped.back() == '}') {
    stripped = StripAsciiWhitespace(
        stripped.substr(1, stripped.size() - 2));
  }
  if (stripped.find(',') != std::string_view::npos) {
    AttributeSet set;
    for (const std::string& piece : SplitAndStrip(stripped, ',')) {
      SQLNF_ASSIGN_OR_RETURN(AttributeId id, schema.FindAttribute(piece));
      set.Add(id);
    }
    return set;
  }
  // No comma: try as a full name first, then compact char-wise.
  if (auto full = schema.FindAttribute(stripped); full.ok()) {
    return AttributeSet::Single(full.value());
  }
  AttributeSet set;
  for (char c : stripped) {
    auto one = schema.FindAttribute(std::string_view(&c, 1));
    if (!one.ok()) {
      return Status::ParseError("cannot resolve attribute term '" +
                                std::string(stripped) + "' in schema " +
                                schema.name());
    }
    set.Add(one.value());
  }
  return set;
}

Result<FunctionalDependency> ParseFd(const TableSchema& schema,
                                     std::string_view text) {
  size_t arrow = text.find("->");
  if (arrow == std::string_view::npos) {
    return Status::ParseError("FD must contain '->s' or '->w': " +
                              std::string(text));
  }
  if (arrow + 2 >= text.size()) {
    return Status::ParseError("FD arrow missing mode suffix: " +
                              std::string(text));
  }
  char suffix = text[arrow + 2];
  Mode mode;
  if (suffix == 's') {
    mode = Mode::kPossible;
  } else if (suffix == 'w') {
    mode = Mode::kCertain;
  } else {
    return Status::ParseError(
        std::string("FD arrow must be '->s' or '->w', got '->") + suffix +
        "'");
  }
  SQLNF_ASSIGN_OR_RETURN(AttributeSet lhs,
                         ParseAttributeSet(schema, text.substr(0, arrow)));
  SQLNF_ASSIGN_OR_RETURN(AttributeSet rhs,
                         ParseAttributeSet(schema, text.substr(arrow + 3)));
  return FunctionalDependency{lhs, rhs, mode};
}

Result<KeyConstraint> ParseKey(const TableSchema& schema,
                               std::string_view text) {
  std::string_view stripped = StripAsciiWhitespace(text);
  if (stripped.size() < 3 || stripped.back() != '>' ||
      stripped[1] != '<' || (stripped[0] != 'p' && stripped[0] != 'c')) {
    return Status::ParseError("key must look like p<...> or c<...>: " +
                              std::string(text));
  }
  Mode mode = stripped[0] == 'p' ? Mode::kPossible : Mode::kCertain;
  SQLNF_ASSIGN_OR_RETURN(
      AttributeSet attrs,
      ParseAttributeSet(schema, stripped.substr(2, stripped.size() - 3)));
  return KeyConstraint{attrs, mode};
}

Result<Constraint> ParseConstraint(const TableSchema& schema,
                                   std::string_view text) {
  std::string_view stripped = StripAsciiWhitespace(text);
  if (stripped.find("->") != std::string_view::npos) {
    SQLNF_ASSIGN_OR_RETURN(FunctionalDependency fd,
                           ParseFd(schema, stripped));
    return Constraint(fd);
  }
  SQLNF_ASSIGN_OR_RETURN(KeyConstraint key, ParseKey(schema, stripped));
  return Constraint(key);
}

Result<ConstraintSet> ParseConstraintSet(const TableSchema& schema,
                                         std::string_view text) {
  ConstraintSet out;
  for (const std::string& piece : SplitAndStrip(text, ';')) {
    SQLNF_ASSIGN_OR_RETURN(Constraint c, ParseConstraint(schema, piece));
    out.Add(c);
  }
  return out;
}

}  // namespace sqlnf
