// Text serialization for schema designs (T, T_S, Σ).
//
// Line-based format, used by the CLI and tests:
//
//   # comments and blank lines are ignored
//   table purchase
//   attrs order_id item catalog price
//   notnull order_id item price
//   constraint item,catalog ->w price
//   constraint p<order_id>
//
// `table` and `attrs` are required (in that order); `notnull` and
// `constraint` lines are optional and repeatable (constraint syntax is
// constraints/parser.h's).

#ifndef SQLNF_CONSTRAINTS_SERIALIZE_H_
#define SQLNF_CONSTRAINTS_SERIALIZE_H_

#include <string>
#include <string_view>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// Renders a design in the format above (parseable by ParseDesign).
std::string FormatDesign(const SchemaDesign& design);

/// Parses the format above.
Result<SchemaDesign> ParseDesign(std::string_view text);

/// Reads and parses a design file.
Result<SchemaDesign> ReadDesignFile(const std::string& path);

/// Writes a design file.
Status WriteDesignFile(const SchemaDesign& design, const std::string& path);

}  // namespace sqlnf

#endif  // SQLNF_CONSTRAINTS_SERIALIZE_H_
