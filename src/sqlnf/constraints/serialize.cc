#include "sqlnf/constraints/serialize.h"

#include <fstream>
#include <sstream>

#include "sqlnf/constraints/parser.h"
#include "sqlnf/util/string_util.h"

namespace sqlnf {

std::string FormatDesign(const SchemaDesign& design) {
  const TableSchema& schema = design.table;
  std::string out = "table " + schema.name() + "\n";
  out += "attrs";
  for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
    out += " " + schema.attribute_name(a);
  }
  out += "\n";
  if (!schema.nfs().empty()) {
    out += "notnull";
    for (AttributeId a : schema.nfs()) {
      out += " " + schema.attribute_name(a);
    }
    out += "\n";
  }
  for (const auto& fd : design.sigma.fds()) {
    out += "constraint " + schema.FormatSet(fd.lhs) + " ->" +
           ModeArrowSuffix(fd.mode) + " " + schema.FormatSet(fd.rhs) +
           "\n";
  }
  for (const auto& key : design.sigma.keys()) {
    out += std::string("constraint ") + ModeKeyPrefix(key.mode) + "<" +
           schema.FormatSet(key.attrs) + ">\n";
  }
  return out;
}

Result<SchemaDesign> ParseDesign(std::string_view text) {
  std::string name;
  std::vector<std::string> attrs;
  std::vector<std::string> not_null;
  std::vector<std::string> constraint_lines;

  for (const std::string& raw : SplitString(text, '\n')) {
    std::string_view line = StripAsciiWhitespace(raw);
    if (line.empty() || line.front() == '#') continue;
    size_t space = line.find(' ');
    std::string_view keyword =
        space == std::string_view::npos ? line : line.substr(0, space);
    std::string_view rest =
        space == std::string_view::npos ? "" : line.substr(space + 1);
    if (keyword == "table") {
      name = std::string(StripAsciiWhitespace(rest));
      if (name.empty()) return Status::ParseError("empty table name");
    } else if (keyword == "attrs") {
      for (const std::string& piece : SplitAndStrip(rest, ' ')) {
        attrs.push_back(piece);
      }
    } else if (keyword == "notnull") {
      for (const std::string& piece : SplitAndStrip(rest, ' ')) {
        not_null.push_back(piece);
      }
    } else if (keyword == "constraint") {
      constraint_lines.emplace_back(rest);
    } else {
      return Status::ParseError("unknown design keyword: " +
                                std::string(keyword));
    }
  }
  if (name.empty()) return Status::ParseError("missing 'table' line");
  if (attrs.empty()) return Status::ParseError("missing 'attrs' line");

  SQLNF_ASSIGN_OR_RETURN(TableSchema schema,
                         TableSchema::Make(name, attrs, not_null));
  ConstraintSet sigma;
  for (const std::string& line : constraint_lines) {
    SQLNF_ASSIGN_OR_RETURN(Constraint c, ParseConstraint(schema, line));
    sigma.Add(c);
  }
  return SchemaDesign{std::move(schema), std::move(sigma)};
}

Result<SchemaDesign> ReadDesignFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseDesign(buffer.str());
}

Status WriteDesignFile(const SchemaDesign& design,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for write");
  out << FormatDesign(design);
  return out ? Status::OK() : Status::IoError("write failed: " + path);
}

}  // namespace sqlnf
